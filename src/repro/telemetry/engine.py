"""Executor for telemetry logical plans, with pushdown into storage.

The physical half of the lazy query layer (see
:mod:`repro.telemetry.plan`).  Given a plan tree the executor

* optimizes it (predicate + projection pushdown),
* **prunes dataset partitions** against their embedded zone maps — a
  partition whose min/max statistics prove no row can match is never
  opened beyond its header (the Lesson-4 ClickHouse/Parquet trick);
* reads only the columns the plan needs
  (``read_table(columns=...)`` seeks past the rest);
* fuses all filter predicates into one boolean mask per partition
  before any row materialization;
* evaluates group-by/aggregate with the vectorized ``reduceat``
  kernels, then sort and limit.

Execution is **bit-identical** to the historical eager path (read
everything, then filter/aggregate): pruning only ever skips partitions
that contribute no rows, and every surviving partition is re-filtered
with the exact predicates.  ``tests/test_telemetry_plan.py`` holds the
property tests that pin this parity.

:func:`explain` renders the optimized plan with the pruning decision —
partitions scanned vs skipped — using header-only statistics reads.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .columnar import ColumnTable, CorruptTelemetryError, read_stats, read_table
from .plan import (
    Filter,
    GroupAgg,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    optimize,
)

__all__ = [
    "AGGREGATES",
    "ExecutionReport",
    "ScanReport",
    "execute",
    "explain",
    "group_aggregate",
    "materialize",
    "source_columns",
]


# ---------------------------------------------------------------------- #
# aggregation kernels (group-sorted values + group start offsets)
# ---------------------------------------------------------------------- #


def _agg_quantile(q: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def fn(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
        out = np.empty(starts.shape[0], dtype=np.float64)
        bounds = np.append(starts, sorted_vals.shape[0])
        for i in range(starts.shape[0]):
            out[i] = np.quantile(sorted_vals[bounds[i]:bounds[i + 1]], q)
        return out

    return fn


def _reduceat(op) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def fn(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
        return op.reduceat(sorted_vals, starts)

    return fn


def _agg_mean(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    sums = np.add.reduceat(sorted_vals, starts)
    counts = np.diff(np.append(starts, sorted_vals.shape[0]))
    return sums / counts


def _agg_count(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.diff(np.append(starts, sorted_vals.shape[0])).astype(np.int64)


def _agg_std(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    bounds = np.append(starts, sorted_vals.shape[0])
    counts = np.diff(bounds).astype(np.float64)
    sums = np.add.reduceat(sorted_vals, starts)
    sqsums = np.add.reduceat(sorted_vals.astype(np.float64) ** 2, starts)
    var = np.maximum(sqsums / counts - (sums / counts) ** 2, 0.0)
    return np.sqrt(var)


#: name -> group-aggregation function over (group-sorted values, group starts)
AGGREGATES: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": _reduceat(np.add),
    "min": _reduceat(np.minimum),
    "max": _reduceat(np.maximum),
    "mean": _agg_mean,
    "count": _agg_count,
    "std": _agg_std,
    "p50": _agg_quantile(0.50),
    "p95": _agg_quantile(0.95),
    "p99": _agg_quantile(0.99),
}


def group_aggregate(
    t: ColumnTable,
    keys: Sequence[str],
    aggs: Sequence[Tuple[str, str]],
) -> ColumnTable:
    """Vectorized group-by/aggregate (composite keys via lexsort).

    Empty ``keys`` aggregates the whole table into one row (zero rows in
    → zero rows out).  This is the exact kernel the eager ``Query.run``
    always used; it moved here so plans and the builder share one
    implementation.
    """
    if not aggs:
        raise ValueError("group_by requires at least one agg()")
    n = t.n_rows
    if keys:
        stacked = np.stack([t[c] for c in keys], axis=1)
        order = np.lexsort(tuple(t[c] for c in reversed(keys)))
        sorted_keys = stacked[order]
        change = np.ones(n, dtype=bool)
        if n > 1:
            change[1:] = np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1)
        starts = np.nonzero(change)[0] if n else np.empty(0, dtype=np.int64)
        out: Dict[str, np.ndarray] = {
            c: sorted_keys[starts, i] for i, c in enumerate(keys)
        }
    else:
        order = np.arange(n)
        starts = np.zeros(1 if n else 0, dtype=np.int64)
        out = {}
    for col, fn in aggs:
        if fn not in AGGREGATES:
            raise ValueError(f"unknown aggregate {fn!r}; known: {sorted(AGGREGATES)}")
        vals = t[col][order].astype(np.float64, copy=False)
        name = f"{fn}_{col}"
        if n:
            out[name] = AGGREGATES[fn](vals, starts)
        else:
            out[name] = np.empty(0, dtype=np.float64)
    return ColumnTable(out)


# ---------------------------------------------------------------------- #
# execution reporting
# ---------------------------------------------------------------------- #


@dataclasses.dataclass
class ScanReport:
    """What one Scan actually touched (pruning observability)."""

    source: str
    partitions_total: int = 0
    partitions_scanned: List[str] = dataclasses.field(default_factory=list)
    partitions_pruned: List[str] = dataclasses.field(default_factory=list)
    columns_read: Optional[List[str]] = None
    rows_scanned: int = 0
    rows_out: int = 0


@dataclasses.dataclass
class ExecutionReport:
    """Per-scan touch statistics collected during one execution."""

    scans: List[ScanReport] = dataclasses.field(default_factory=list)


# ---------------------------------------------------------------------- #
# executor
# ---------------------------------------------------------------------- #


def _fused_mask(t: ColumnTable, predicates) -> np.ndarray:
    mask = np.ones(t.n_rows, dtype=bool)
    for p in predicates:
        mask &= p.mask(t)
    return mask


def _is_dataset(source) -> bool:
    return hasattr(source, "partition_files")


def _scan_read_columns(scan: Scan) -> Optional[Tuple[str, ...]]:
    """Columns the scan must physically read (projection ∪ predicates)."""
    if scan.columns is None:
        return None
    cols: Dict[str, None] = dict.fromkeys(scan.columns)
    for p in scan.predicates:
        cols[p.column] = None
    return tuple(cols)


def _exec_scan(scan: Scan, report: Optional[ExecutionReport]) -> ColumnTable:
    if not _is_dataset(scan.source):
        t: ColumnTable = scan.source
        sr = ScanReport(source=f"table rows={t.n_rows}", rows_scanned=t.n_rows)
        if scan.predicates:
            t = t.filter(_fused_mask(t, scan.predicates))
        if scan.columns is not None:
            t = t.select(list(scan.columns))
            sr.columns_read = list(scan.columns)
        sr.rows_out = t.n_rows
        if report is not None:
            report.scans.append(sr)
        return t

    source = scan.source
    read_cols = _scan_read_columns(scan)
    sr = ScanReport(
        source=str(getattr(source, "root", source)),
        columns_read=None if read_cols is None else list(read_cols),
    )
    live = bool(getattr(source, "live", False))
    pieces: List[ColumnTable] = []
    for path in source.partition_files():
        sr.partitions_total += 1
        try:
            stats = read_stats(path)
            if not all(p.might_match(stats) for p in scan.predicates):
                sr.partitions_pruned.append(path.name)
                continue
            t = read_table(path, columns=read_cols)
        except (OSError, CorruptTelemetryError):
            # Live scan of a dataset still being written: a partition
            # that vanished or is torn mid-commit is simply not part of
            # this snapshot.  Non-live scans keep the hard error.
            if live:
                sr.partitions_pruned.append(path.name)
                continue
            raise
        sr.partitions_scanned.append(path.name)
        sr.rows_scanned += t.n_rows
        if scan.predicates:
            t = t.filter(_fused_mask(t, scan.predicates))
        pieces.append(t)
    if pieces:
        out = pieces[0]
        for t in pieces[1:]:
            out = out.concat(t)
    else:
        # Every partition pruned (or the dataset is empty): an empty
        # table with the dataset's schema, so downstream nodes behave
        # exactly as they would on an eagerly-read-then-filtered table.
        schema = source.schema()
        names = read_cols if read_cols is not None else tuple(schema)
        out = ColumnTable(
            {n: np.empty(0, dtype=schema.get(n, np.float64)) for n in names}
        )
    sr.rows_out = out.n_rows
    if report is not None:
        report.scans.append(sr)
    return out


def _execute(node: PlanNode, report: Optional[ExecutionReport]) -> ColumnTable:
    if isinstance(node, Scan):
        return _exec_scan(node, report)
    if isinstance(node, Filter):
        t = _execute(node.child, report)
        return t.filter(_fused_mask(t, node.predicates))
    if isinstance(node, Project):
        return _execute(node.child, report).select(list(node.columns))
    if isinstance(node, GroupAgg):
        return group_aggregate(_execute(node.child, report), node.keys, node.aggs)
    if isinstance(node, Sort):
        t = _execute(node.child, report)
        order = np.argsort(t[node.column], kind="stable")
        if node.desc:
            order = order[::-1]
        return t.filter(order)
    if isinstance(node, Limit):
        return _execute(node.child, report).head(node.n)
    raise TypeError(f"unknown plan node {type(node).__name__}")


def execute(
    plan: PlanNode,
    report: Optional[ExecutionReport] = None,
    *,
    optimized: bool = False,
) -> ColumnTable:
    """Optimize (unless already optimized) and run a plan.

    Pass an :class:`ExecutionReport` to observe which partitions and
    columns each scan touched.
    """
    if not optimized:
        plan = optimize(plan)
    return _execute(plan, report)


# ---------------------------------------------------------------------- #
# explain
# ---------------------------------------------------------------------- #


def _render(node: PlanNode, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    if isinstance(node, Scan):
        preds = ", ".join(p.describe() for p in node.predicates)
        cols = "all" if node.columns is None else f"[{', '.join(node.columns)}]"
        if _is_dataset(node.source):
            source = node.source
            scanned, pruned = [], []
            for path in source.partition_files():
                try:
                    stats = read_stats(path)
                except (OSError, CorruptTelemetryError):
                    if getattr(source, "live", False):
                        pruned.append(path.name)
                        continue
                    raise
                if all(p.might_match(stats) for p in node.predicates):
                    scanned.append(path.name)
                else:
                    pruned.append(path.name)
            lines.append(
                f"{pad}Scan dataset={getattr(source, 'root', source)} "
                f"columns={cols} predicates=[{preds}]"
            )
            total = len(scanned) + len(pruned)
            lines.append(
                f"{pad}  partitions: {len(scanned)} scanned, "
                f"{len(pruned)} pruned (of {total})"
            )
            if pruned:
                lines.append(f"{pad}  pruned: {', '.join(pruned)}")
        else:
            lines.append(
                f"{pad}Scan table rows={node.source.n_rows} "
                f"columns={cols} predicates=[{preds}]"
            )
        return
    if isinstance(node, Filter):
        lines.append(
            f"{pad}Filter {' AND '.join(p.describe() for p in node.predicates)}"
        )
    elif isinstance(node, Project):
        lines.append(f"{pad}Project [{', '.join(node.columns)}]")
    elif isinstance(node, GroupAgg):
        aggs = ", ".join(f"{fn}({col})" for col, fn in node.aggs)
        keys = ", ".join(node.keys) or "<global>"
        lines.append(f"{pad}GroupAgg keys=[{keys}] aggs=[{aggs}]")
    elif isinstance(node, Sort):
        lines.append(f"{pad}Sort {node.column}{' desc' if node.desc else ''}")
    elif isinstance(node, Limit):
        lines.append(f"{pad}Limit {node.n}")
    else:
        raise TypeError(f"unknown plan node {type(node).__name__}")
    _render(node.child, depth + 1, lines)


def explain(plan: PlanNode) -> str:
    """The optimized plan as text, annotated with the pruning decision.

    Pruning is decided from header-only statistics reads — no column
    payload is touched, so ``explain`` is cheap even on large datasets.
    """
    lines: List[str] = ["== optimized plan =="]
    _render(optimize(plan), 0, lines)
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# convenience entry points for analysis-layer consumers
# ---------------------------------------------------------------------- #


def source_columns(source) -> List[str]:
    """Column names a source can provide (table names or dataset schema)."""
    if _is_dataset(source):
        return list(source.schema())
    return list(source.names)


def materialize(source, columns: Optional[Sequence[str]] = None) -> ColumnTable:
    """Fetch a table from a table-or-dataset source, with pushdown.

    The one-liner every analysis consumer goes through: in-memory
    tables pass through (optionally projected, which is free — numpy
    columns are shared, not copied); datasets are scanned through the
    plan engine so only the requested column payloads are decoded.
    """
    if not _is_dataset(source):
        return source if columns is None else source.select(list(columns))
    node: PlanNode = Scan(source)
    if columns is not None:
        node = Project(node, tuple(columns))
    return execute(node)
