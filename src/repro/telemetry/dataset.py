"""Partitioned telemetry datasets with predicate pushdown (Lesson 4).

Lesson 4 recommends "binary columnar formats ... with embedded
statistics over partitioned data" for low-latency BSP telemetry.  A
:class:`TelemetryDataset` is a directory of columnar files — one per
partition (typically one per epoch or per run segment) — plus a JSON
manifest.  Reads go through the logical-plan engine
(:mod:`repro.telemetry.plan` / :mod:`repro.telemetry.engine`): each
file's *embedded column statistics* (zone maps) prune partitions
without touching their payload, and only requested columns are decoded
— the Parquet trick that makes interactive diagnosis possible at scale.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .columnar import ColumnTable, fsync_dir, read_schema, read_stats, write_table
from .plan import ColumnPredicate

__all__ = ["Predicate", "TelemetryDataset"]

_MANIFEST = "manifest.json"


def _write_manifest(root: Path, manifest: dict) -> None:
    """Atomic, fsynced manifest publish (same discipline as the
    partition files — a torn manifest must not orphan a dataset)."""
    import os

    path = root / _MANIFEST
    tmp = path.with_name(_MANIFEST + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(manifest))
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    fsync_dir(root)


@dataclasses.dataclass(frozen=True)
class Predicate:
    """A pushdown-able range predicate: ``lo <= column <= hi``.

    Either bound may be ``None`` (unbounded).  A partition whose
    embedded ``[min, max]`` for the column cannot intersect the range
    is skipped entirely.
    """

    column: str
    lo: Optional[float] = None
    hi: Optional[float] = None

    def might_match(self, stats: Dict[str, Tuple[float, float]]) -> bool:
        if self.column not in stats:
            return True  # unknown column: cannot prune safely
        cmin, cmax = stats[self.column]
        if math.isnan(cmin):
            return False  # empty partition
        if self.lo is not None and cmax < self.lo:
            return False
        if self.hi is not None and cmin > self.hi:
            return False
        return True

    def mask(self, table: ColumnTable) -> np.ndarray:
        col = table[self.column]
        m = np.ones(table.n_rows, dtype=bool)
        if self.lo is not None:
            m &= col >= self.lo
        if self.hi is not None:
            m &= col <= self.hi
        return m

    def to_plan_predicates(self) -> List[ColumnPredicate]:
        """The equivalent conjunctive plan predicates (0, 1, or 2)."""
        out: List[ColumnPredicate] = []
        if self.lo is not None:
            out.append(ColumnPredicate(self.column, ">=", self.lo))
        if self.hi is not None:
            out.append(ColumnPredicate(self.column, "<=", self.hi))
        return out


class TelemetryDataset:
    """A directory of columnar partitions with a manifest.

    Usage::

        ds = TelemetryDataset.create(path)
        ds.append(table, label="epoch-0")
        ...
        hot = ds.read(predicates=[Predicate("comm_s", lo=0.01)])

    A dataset is also a first-class query source: ``Query(ds)`` and
    ``sql(ds, ...)`` plan lazily over it with partition pruning and
    column-selective reads.
    """

    def __init__(self, root: Path, manifest: dict, live: bool = False) -> None:
        self.root = root
        self._manifest = manifest
        #: opened for reading *while a writer is still appending*: the
        #: listing skips staging files and the scan tolerates partitions
        #: that vanish or arrive between the manifest read and the scan
        self.live = live

    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, root: str | Path) -> "TelemetryDataset":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        manifest = {"partitions": []}
        _write_manifest(root, manifest)
        return cls(root, manifest)

    @classmethod
    def open(cls, root: str | Path, live: bool = False) -> "TelemetryDataset":
        """Open an existing dataset.

        With ``live=True`` the dataset may still be mid-write by another
        process (a running job's event spool): a missing manifest reads
        as an empty dataset rather than an error, committed partitions
        not yet published in the manifest are picked up from disk, and
        ``.tmp`` staging files are never listed.  Partition *files* are
        committed atomically (write-temp + rename), so everything a live
        listing returns is complete and internally consistent.
        """
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            if live:
                return cls(root, {"partitions": []}, live=True)
            raise FileNotFoundError(f"no telemetry dataset at {root}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, OSError):
            if live:
                # Torn/unreadable manifest mid-replace: fall back to the
                # committed partition files on disk.
                return cls(root, {"partitions": []}, live=True)
            raise
        return cls(root, manifest, live=live)

    # ------------------------------------------------------------------ #

    @property
    def n_partitions(self) -> int:
        if self.live:
            return len(self.partition_files())
        return len(self._manifest["partitions"])

    def partition_files(self) -> List[Path]:
        """Partition paths in append order (the scan protocol).

        Live datasets list committed ``part-*.rprc`` files straight from
        the directory — in name order, which is append order — so a
        partition renamed into place after the manifest was read is
        visible, and staging ``.tmp`` files never are.
        """
        if self.live:
            listed = {p["file"] for p in self._manifest["partitions"]}
            files = {
                p.name
                for p in self.root.glob("part-*.rprc")
                if not p.name.endswith(".tmp")
            }
            return [self.root / name for name in sorted(listed | files)
                    if (self.root / name).exists()]
        return [self.root / p["file"] for p in self._manifest["partitions"]]

    def schema(self) -> Dict[str, np.dtype]:
        """Column names → dtypes, from the first partition's header.

        Empty datasets have an empty schema.  Header-only: no payload
        is read.
        """
        if self.live:
            from .columnar import CorruptTelemetryError

            for path in self.partition_files():
                try:
                    return read_schema(path)
                except (OSError, CorruptTelemetryError):
                    continue
            return {}
        parts = self._manifest["partitions"]
        if not parts:
            return {}
        return read_schema(self.root / parts[0]["file"])

    def append(self, table: ColumnTable, label: str | None = None) -> str:
        """Write a table as a new partition; returns its file name."""
        idx = self.n_partitions
        name = f"part-{idx:05d}.rprc"
        write_table(table, self.root / name)
        self._manifest["partitions"].append(
            {"file": name, "label": label or f"part-{idx}", "n_rows": table.n_rows}
        )
        _write_manifest(self.root, self._manifest)
        return name

    def read(
        self,
        predicates: Sequence[Predicate] = (),
        columns: Sequence[str] | None = None,
    ) -> ColumnTable:
        """Read matching rows across partitions with file-level pruning.

        Builds a ``Scan → Filter → Project`` plan and executes it
        through the engine: partitions whose embedded stats rule out
        every predicate are skipped without reading their payload;
        surviving partitions are filtered row-wise (one fused mask) and
        concatenated.  Raises :class:`LookupError` when pruning leaves
        no partition at all — a query that touches nothing is usually a
        typo, not an empty result.
        """
        from .engine import ExecutionReport, execute
        from .plan import Filter, PlanNode, Project, Scan

        plan_preds: List[ColumnPredicate] = []
        for p in predicates:
            plan_preds.extend(p.to_plan_predicates())
        node: PlanNode = Scan(self)
        if plan_preds:
            node = Filter(node, tuple(plan_preds))
        if columns is not None:
            node = Project(node, tuple(columns))
        report = ExecutionReport()
        out = execute(node, report)
        if not report.scans or not report.scans[0].partitions_scanned:
            raise LookupError("no partition matches the given predicates")
        return out

    def pruned_partitions(self, predicates: Sequence[Predicate]) -> List[str]:
        """Which partitions pruning would skip (for tests/diagnostics)."""
        skipped = []
        for part in self._manifest["partitions"]:
            stats = read_stats(self.root / part["file"])
            if not all(p.might_match(stats) for p in predicates):
                skipped.append(part["file"])
        return skipped

    def labels(self) -> List[str]:
        return [p["label"] for p in self._manifest["partitions"]]

    def __repr__(self) -> str:
        rows = sum(p["n_rows"] for p in self._manifest["partitions"])
        return f"TelemetryDataset({self.root}, partitions={self.n_partitions}, rows={rows})"
