"""Partitioned telemetry datasets with predicate pushdown (Lesson 4).

Lesson 4 recommends "binary columnar formats ... with embedded
statistics over partitioned data" for low-latency BSP telemetry.  A
:class:`TelemetryDataset` is a directory of columnar files — one per
partition (typically one per epoch or per run segment) — plus a JSON
manifest.  Reads take simple predicates and use each file's *embedded
column statistics* to skip partitions without touching their payload:
the Parquet trick that makes interactive diagnosis possible at scale.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .columnar import ColumnTable, read_stats, read_table, write_table

__all__ = ["Predicate", "TelemetryDataset"]

_MANIFEST = "manifest.json"


@dataclasses.dataclass(frozen=True)
class Predicate:
    """A pushdown-able range predicate: ``lo <= column <= hi``.

    Either bound may be ``None`` (unbounded).  A partition whose
    embedded ``[min, max]`` for the column cannot intersect the range
    is skipped entirely.
    """

    column: str
    lo: Optional[float] = None
    hi: Optional[float] = None

    def might_match(self, stats: Dict[str, Tuple[float, float]]) -> bool:
        if self.column not in stats:
            return True  # unknown column: cannot prune safely
        cmin, cmax = stats[self.column]
        if math.isnan(cmin):
            return False  # empty partition
        if self.lo is not None and cmax < self.lo:
            return False
        if self.hi is not None and cmin > self.hi:
            return False
        return True

    def mask(self, table: ColumnTable) -> np.ndarray:
        col = table[self.column]
        m = np.ones(table.n_rows, dtype=bool)
        if self.lo is not None:
            m &= col >= self.lo
        if self.hi is not None:
            m &= col <= self.hi
        return m


class TelemetryDataset:
    """A directory of columnar partitions with a manifest.

    Usage::

        ds = TelemetryDataset.create(path)
        ds.append(table, label="epoch-0")
        ...
        hot = ds.read(predicates=[Predicate("comm_s", lo=0.01)])
    """

    def __init__(self, root: Path, manifest: dict) -> None:
        self.root = root
        self._manifest = manifest

    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, root: str | Path) -> "TelemetryDataset":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        manifest = {"partitions": []}
        (root / _MANIFEST).write_text(json.dumps(manifest))
        return cls(root, manifest)

    @classmethod
    def open(cls, root: str | Path) -> "TelemetryDataset":
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no telemetry dataset at {root}")
        return cls(root, json.loads(manifest_path.read_text()))

    # ------------------------------------------------------------------ #

    @property
    def n_partitions(self) -> int:
        return len(self._manifest["partitions"])

    def append(self, table: ColumnTable, label: str | None = None) -> str:
        """Write a table as a new partition; returns its file name."""
        idx = self.n_partitions
        name = f"part-{idx:05d}.rprc"
        write_table(table, self.root / name)
        self._manifest["partitions"].append(
            {"file": name, "label": label or f"part-{idx}", "n_rows": table.n_rows}
        )
        (self.root / _MANIFEST).write_text(json.dumps(self._manifest))
        return name

    def read(
        self,
        predicates: Sequence[Predicate] = (),
        columns: Sequence[str] | None = None,
    ) -> ColumnTable:
        """Read matching rows across partitions with file-level pruning.

        Partitions whose embedded stats rule out every predicate are
        skipped without reading their payload; surviving partitions are
        filtered row-wise and concatenated.
        """
        tables: List[ColumnTable] = []
        for part in self._manifest["partitions"]:
            path = self.root / part["file"]
            stats = read_stats(path)
            if not all(p.might_match(stats) for p in predicates):
                continue
            t = read_table(path, columns=None)  # need predicate columns too
            if predicates:
                mask = np.ones(t.n_rows, dtype=bool)
                for p in predicates:
                    mask &= p.mask(t)
                t = t.filter(mask)
            if columns is not None:
                t = t.select(list(columns))
            tables.append(t)
        if not tables:
            raise LookupError("no partition matches the given predicates")
        out = tables[0]
        for t in tables[1:]:
            out = out.concat(t)
        return out

    def pruned_partitions(self, predicates: Sequence[Predicate]) -> List[str]:
        """Which partitions pruning would skip (for tests/diagnostics)."""
        skipped = []
        for part in self._manifest["partitions"]:
            stats = read_stats(self.root / part["file"])
            if not all(p.might_match(stats) for p in predicates):
                skipped.append(part["file"])
        return skipped

    def labels(self) -> List[str]:
        return [p["label"] for p in self._manifest["partitions"]]

    def __repr__(self) -> str:
        rows = sum(p["n_rows"] for p in self._manifest["partitions"])
        return f"TelemetryDataset({self.root}, partitions={self.n_partitions}, rows={rows})"
