"""Automated run-diagnosis reports (the paper's workflow, distilled).

§IV's diagnosis loop — phase breakdown, work↔time correlation,
straggler attribution, anomaly detection — applied automatically to a
run's telemetry, producing a text report with *actionable findings*
ranked the way the paper's lessons rank them: hardware first (Lesson 1:
"placement cannot compensate for unstable system behavior"), then
stack tuning, then placement.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from .analysis import (
    PhaseBreakdown,
    phase_breakdown,
    straggler_attribution,
    work_time_correlation,
)
from .anomaly import detect_throttled_nodes, detect_wait_spikes
from .columnar import ColumnTable
from .engine import materialize

__all__ = ["Finding", "RunReport", "diagnose"]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnosis finding with severity and a recommendation."""

    severity: str          # "critical" | "warning" | "info"
    category: str          # "hardware" | "stack" | "placement" | "telemetry"
    message: str
    recommendation: str

    def __str__(self) -> str:
        return f"[{self.severity.upper():8s}] {self.message}\n" \
               f"           -> {self.recommendation}"


@dataclasses.dataclass
class RunReport:
    """A complete diagnosis of one run's rank-step telemetry."""

    phases: PhaseBreakdown
    correlation: float
    findings: List[Finding]
    straggler_table: ColumnTable

    @property
    def healthy(self) -> bool:
        return not any(f.severity == "critical" for f in self.findings)

    def text(self) -> str:
        lines = ["=== run diagnosis report ==="]
        f = self.phases.fractions()
        lines.append(
            f"phases: compute {f['compute']:.0%}, comm {f['comm']:.0%}, "
            f"sync {f['sync']:.0%}, lb {f['lb']:.0%}"
        )
        lines.append(f"work<->comm-time correlation: {self.correlation:+.2f}")
        if self.findings:
            lines.append("")
            for finding in self.findings:
                lines.append(str(finding))
        else:
            lines.append("no findings — telemetry clean")
        if self.straggler_table.n_rows:
            lines.append("\ntop stragglers:")
            lines.append(self.straggler_table.pretty(5))
        return "\n".join(lines)


def diagnose(
    table,
    ranks_per_node: int = 16,
    sync_fraction_warn: float = 0.35,
    correlation_floor: float = 0.5,
) -> RunReport:
    """Analyze rank-step telemetry and produce a report.

    ``table`` may be an in-memory :class:`ColumnTable` or an on-disk
    :class:`~repro.telemetry.dataset.TelemetryDataset` (materialized
    once up front — the report touches most columns anyway).

    The findings encode the paper's decision order:

    1. throttled nodes (Lesson 1): fix hardware before anything else;
    2. MPI_Wait spikes (Fig. 1b): a stack artifact, not load imbalance;
    3. weak work↔time correlation (Fig. 1a): telemetry untrustworthy —
       tune before modeling;
    4. high sync with *clustered* stragglers vs *dispersed* stragglers:
       the former points at hardware/system, the latter at placement.
    """
    table = materialize(table)
    findings: List[Finding] = []
    phases = phase_breakdown(table)
    fr = phases.fractions()

    throttle = detect_throttled_nodes(table, ranks_per_node)
    if throttle.any:
        findings.append(
            Finding(
                "critical", "hardware",
                f"node-level compute inflation on node(s) "
                f"{throttle.throttled_nodes} (clusters of {ranks_per_node} "
                f"ranks) — thermal throttling signature",
                "prune/blacklist the nodes and re-run health checks "
                "(paper §IV-A); do not tune placement against this",
            )
        )

    spikes = detect_wait_spikes(table, "comm_s", k_mad=12.0, min_spike_s=5e-3)
    spike_rate = spikes.n_spikes / max(table.n_rows, 1)
    if spikes.n_spikes > 0 and spike_rate > 1e-4:
        findings.append(
            Finding(
                "warning", "stack",
                f"{spikes.n_spikes} MPI_Wait spikes above "
                f"{spikes.threshold_s * 1e3:.1f} ms "
                f"(baseline {spikes.baseline_s * 1e3:.2f} ms)",
                "check fabric ACK-recovery behaviour; enable the drain "
                "queue (paper Fig. 1b)",
            )
        )

    msgs_total = None
    if "msgs_local" in table and "msgs_remote" in table:
        msgs_total = table["msgs_local"] + table["msgs_remote"]
        work_table = table.with_column("msgs_total", msgs_total)
        corr = work_time_correlation(work_table, "msgs_total", "comm_s")
    else:
        corr = work_time_correlation(table)
    has_comm_signal = (
        float(table["comm_s"].sum()) > 0
        and (msgs_total is None or int(msgs_total.sum()) > 0)
    )
    if corr < correlation_floor and has_comm_signal and not throttle.any:
        findings.append(
            Finding(
                "warning", "telemetry",
                f"communication time poorly correlated with message volume "
                f"(r = {corr:+.2f})",
                "telemetry is not yet trustworthy for modeling: tune the "
                "stack (queue sizes, send priority) before fitting "
                "placement to it (paper Fig. 1a / Lesson 2)",
            )
        )

    stragglers = straggler_attribution(table, top_k=10)
    if fr["sync"] > sync_fraction_warn and not throttle.any:
        # Distinguish hardware from placement the way the paper did:
        # normalize the straggler's compute time by its *assigned work*.
        # A rank that is slow per unit of work is a system problem; a
        # rank that is slow because it owns more work is a placement
        # problem.
        hardware_suspect = False
        detail = ""
        if "load" in table and stragglers.n_rows:
            worst = int(stragglers["rank"][0])
            ranks = table["rank"]
            comp = table["compute_s"].astype(np.float64)
            load = np.maximum(table["load"].astype(np.float64), 1e-12)
            ratio = comp / load
            worst_ratio = float(np.median(ratio[ranks == worst]))
            pop_ratio = float(np.median(ratio))
            hardware_suspect = worst_ratio > 1.5 * pop_ratio
            detail = (
                f" (rank {worst}: {worst_ratio / pop_ratio:.1f}x the "
                f"population's time-per-work)"
            )
        if hardware_suspect:
            findings.append(
                Finding(
                    "warning", "hardware",
                    f"synchronization {fr['sync']:.0%} of runtime, led by a "
                    f"rank that is slow per unit of work{detail}",
                    "a per-work slowdown is a system signature — inspect "
                    "that rank's node before rebalancing (Lesson 1)",
                )
            )
        else:
            findings.append(
                Finding(
                    "info", "placement",
                    f"synchronization {fr['sync']:.0%} of runtime; straggler "
                    f"compute is proportional to assigned work{detail}",
                    "genuine load imbalance: feed measured block costs to a "
                    "balancing policy (CPLX; paper §V)",
                )
            )

    return RunReport(
        phases=phases,
        correlation=corr,
        findings=findings,
        straggler_table=stragglers,
    )
