"""Anomaly detectors for cross-stack performance artifacts (paper §IV).

Two detectors matching the paper's two headline anomalies:

* :func:`detect_throttled_nodes` — fail-slow hardware: ranks whose
  compute time is a large multiple of the population median, appearing
  in whole-node groups (Fig. 2's "clusters of 16");
* :func:`detect_wait_spikes` — transient MPI_Wait/comm spikes: per-rank
  robust outlier detection (median + k·MAD) that survives the
  aggregation which hides spikes from profilers (§IV-B implications).

Both detectors accept an in-memory table or an on-disk
:class:`~repro.telemetry.dataset.TelemetryDataset`; dataset sources
decode only the columns the detector touches.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from .columnar import ColumnTable
from .engine import materialize

__all__ = [
    "ThrottleReport",
    "SpikeReport",
    "WindowConfig",
    "AnomalyAssessment",
    "detect_throttled_nodes",
    "detect_wait_spikes",
    "assess_window",
]


@dataclasses.dataclass(frozen=True)
class ThrottleReport:
    """Outcome of fail-slow node detection."""

    throttled_nodes: List[int]
    slowdown_by_node: np.ndarray       #: per-node mean compute slowdown
    median_compute_s: float

    @property
    def any(self) -> bool:
        return bool(self.throttled_nodes)


def detect_throttled_nodes(
    source,
    ranks_per_node: int,
    slowdown_threshold: float = 2.0,
) -> ThrottleReport:
    """Find nodes whose ranks' compute time is inflated vs the median.

    Aggregates per-rank mean compute, normalizes by the population
    median, averages per node, and flags nodes above the threshold.
    Node-level averaging is what turns a noisy per-rank signal into the
    unmistakable clusters-of-16 signature.
    """
    if ranks_per_node < 1:
        raise ValueError("ranks_per_node must be >= 1")
    table = materialize(source, columns=("rank", "compute_s"))
    ranks = table["rank"]
    comp = table["compute_s"].astype(np.float64)
    n_ranks = int(ranks.max()) + 1 if ranks.size else 0
    if n_ranks == 0:
        return ThrottleReport([], np.empty(0), 0.0)
    sums = np.bincount(ranks, weights=comp, minlength=n_ranks)
    counts = np.maximum(np.bincount(ranks, minlength=n_ranks), 1)
    rank_mean = sums / counts
    med = float(np.median(rank_mean))
    if med <= 0:
        return ThrottleReport([], np.empty(0), med)
    n_nodes = -(-n_ranks // ranks_per_node)
    node_of = np.arange(n_ranks) // ranks_per_node
    node_slow = np.bincount(node_of, weights=rank_mean / med, minlength=n_nodes)
    node_cnt = np.maximum(np.bincount(node_of, minlength=n_nodes), 1)
    node_slow = node_slow / node_cnt
    bad = np.nonzero(node_slow > slowdown_threshold)[0]
    return ThrottleReport([int(b) for b in bad], node_slow, med)


@dataclasses.dataclass(frozen=True)
class SpikeReport:
    """Outcome of transient-spike detection on a time series column."""

    n_spikes: int
    spike_rows: np.ndarray     #: row indices of spikes in the input table
    threshold_s: float
    baseline_s: float          #: robust center (median)

    @property
    def any(self) -> bool:
        return self.n_spikes > 0


def detect_wait_spikes(
    source,
    col: str = "comm_s",
    k_mad: float = 8.0,
    min_spike_s: float = 0.0,
) -> SpikeReport:
    """Robust outlier detection: rows with ``col > median + k * MAD``.

    MAD-based thresholds keep working when spikes are rare and huge
    (mean/std would be dragged by the spikes themselves, which is why
    aggregate profiles miss them).  ``min_spike_s`` additionally floors
    the threshold for nearly-constant baselines.  ``spike_rows`` index
    into the source's row order (partition append order for datasets).
    """
    table = materialize(source, columns=(col,))
    vals = table[col].astype(np.float64)
    if vals.size == 0:
        return SpikeReport(0, np.empty(0, dtype=np.int64), 0.0, 0.0)
    med = float(np.median(vals))
    mad = float(np.median(np.abs(vals - med)))
    thresh = max(med + k_mad * max(mad, 1e-12), med + min_spike_s)
    rows = np.nonzero(vals > thresh)[0]
    return SpikeReport(int(rows.shape[0]), rows, thresh, med)


# --------------------------------------------------------------------- #
# Windowed online assessment
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class WindowConfig:
    """Thresholds for one windowed anomaly assessment.

    Online detection runs the same detectors as the offline analysis but
    over a short trailing window of step records, so thresholds are more
    conservative: a window has far fewer rows than a full run and a
    false eviction is expensive.

    Attributes
    ----------
    window_steps:
        Trailing (sampled) step records per assessment window.
    slowdown_threshold:
        Node-level compute inflation that flags a node as throttled.
    spike_k_mad:
        MAD multiplier for the wait-spike threshold.
    min_spike_s:
        Absolute floor added to the spike threshold — windows of nearly
        constant comm time otherwise flag sub-millisecond jitter.
    min_rows:
        Minimum rows for an assessment; smaller windows report healthy
        (not enough evidence to act on).
    """

    window_steps: int = 8
    slowdown_threshold: float = 2.0
    spike_k_mad: float = 12.0
    min_spike_s: float = 2.0e-3
    min_rows: int = 64

    def __post_init__(self) -> None:
        if self.window_steps < 1:
            raise ValueError("window_steps must be >= 1")
        if self.slowdown_threshold <= 1.0:
            raise ValueError("slowdown_threshold must be > 1")
        if self.spike_k_mad <= 0 or self.min_spike_s < 0:
            raise ValueError("spike thresholds must be positive")


@dataclasses.dataclass(frozen=True)
class AnomalyAssessment:
    """Joint outcome of one windowed detector pass."""

    throttle: ThrottleReport
    spikes: SpikeReport
    #: True when the flagged spikes sit on ranks with remote traffic —
    #: the ACK-recovery signature (Fig. 1b), as opposed to local-queue
    #: contention; gates the drain-queue mitigation.
    spikes_implicate_ack: bool
    n_rows: int

    @property
    def any(self) -> bool:
        return self.throttle.any or self.spikes.any


def assess_window(
    table: ColumnTable,
    ranks_per_node: int,
    config: WindowConfig = WindowConfig(),
) -> AnomalyAssessment:
    """Run both detectors over one trailing telemetry window.

    This is the online-monitoring primitive: the resilient driver calls
    it at each epoch boundary on :meth:`TelemetryCollector
    .recent_steps_table` output, and feeds the assessment to the
    mitigation engine.
    """
    if table.n_rows < config.min_rows:
        empty = np.empty(0, dtype=np.int64)
        return AnomalyAssessment(
            throttle=ThrottleReport([], np.empty(0), 0.0),
            spikes=SpikeReport(0, empty, 0.0, 0.0),
            spikes_implicate_ack=False,
            n_rows=table.n_rows,
        )
    throttle = detect_throttled_nodes(
        table, ranks_per_node, slowdown_threshold=config.slowdown_threshold
    )
    spikes = detect_wait_spikes(
        table, "comm_s", k_mad=config.spike_k_mad, min_spike_s=config.min_spike_s
    )
    implicated = False
    if spikes.any and "msgs_remote" in table:
        remote = table["msgs_remote"][spikes.spike_rows]
        implicated = bool(np.mean(remote > 0) > 0.5)
    return AnomalyAssessment(
        throttle=throttle,
        spikes=spikes,
        spikes_implicate_ack=implicated,
        n_rows=table.n_rows,
    )
