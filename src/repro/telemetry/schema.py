"""Telemetry record schemas.

Structured schemas are the point (Lesson 4): every record carries the
dimensions diagnosis needs to slice by — timestep, rank, and phase —
with measures as plain numeric columns.  Dimension values are integers
(rank, step, epoch, node) so tables stay columnar-friendly.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["RANK_STEP_SCHEMA", "EPOCH_SCHEMA", "empty_columns"]

#: Per-(step, rank) record: the workhorse table, one row per rank per
#: simulated (or sampled) timestep.
RANK_STEP_SCHEMA: Dict[str, np.dtype] = {
    "step": np.dtype(np.int64),        # timestep index
    "epoch": np.dtype(np.int64),       # redistribution epoch index
    "rank": np.dtype(np.int64),
    "node": np.dtype(np.int64),
    "compute_s": np.dtype(np.float64),
    "comm_s": np.dtype(np.float64),    # boundary exchange incl. MPI_Wait
    "sync_s": np.dtype(np.float64),    # collective stall
    "lb_s": np.dtype(np.float64),      # redistribution (placement + migration)
    "n_blocks": np.dtype(np.int64),    # blocks owned this epoch
    "load": np.dtype(np.float64),      # assigned compute cost
    "msgs_local": np.dtype(np.int64),  # incoming intra-node MPI messages
    "msgs_remote": np.dtype(np.int64),  # incoming inter-node MPI messages
    "weight": np.dtype(np.float64),    # real steps this sampled row represents
}

#: Per-epoch summary record, one row per redistribution interval.
EPOCH_SCHEMA: Dict[str, np.dtype] = {
    "epoch": np.dtype(np.int64),
    "step_start": np.dtype(np.int64),
    "n_steps": np.dtype(np.int64),
    "n_blocks": np.dtype(np.int64),
    "n_refined": np.dtype(np.int64),
    "n_coarsened": np.dtype(np.int64),
    "placement_s": np.dtype(np.float64),   # placement computation time
    "migration_blocks": np.dtype(np.int64),
    "epoch_wall_s": np.dtype(np.float64),  # simulated wall time of the epoch
}


def empty_columns(schema: Dict[str, np.dtype]) -> Dict[str, List]:
    """Fresh accumulation buffers (python lists) for a schema."""
    return {name: [] for name in schema}
