"""Telemetry analytics: correlation, variance, straggler attribution.

These are the analyses the paper ran to (a) decide whether telemetry was
trustworthy (work↔time correlation, Fig. 1a), (b) localize anomalies
(per-rank variance, Fig. 3), and (c) attribute synchronization cost to
stragglers (§IV-D).

Every function takes either an in-memory
:class:`~repro.telemetry.columnar.ColumnTable` or an on-disk
:class:`~repro.telemetry.dataset.TelemetryDataset` and goes through the
logical-plan engine: dataset sources decode only the columns an
analysis needs (projection pushdown), and aggregations run on the same
vectorized kernels as the query layer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from .columnar import ColumnTable
from .engine import materialize, source_columns
from .query import Query

__all__ = [
    "work_time_correlation",
    "rankwise_variance",
    "straggler_attribution",
    "phase_breakdown",
    "PhaseBreakdown",
]


def work_time_correlation(
    source,
    work_col: str = "msgs_remote",
    time_col: str = "comm_s",
) -> float:
    """Pearson correlation between a work metric and a time metric.

    Computed across all (step, rank) rows.  The paper's tuning goal
    (Fig. 1a): after removing system-level noise this correlation should
    be strong; while anomalies persist it is weak or absent.  Returns 0
    for degenerate (constant) inputs.
    """
    table = materialize(source, columns=(work_col, time_col))
    work = table[work_col].astype(np.float64)
    t = table[time_col].astype(np.float64)
    if work.size < 2 or work.std() == 0 or t.std() == 0:
        return 0.0
    return float(np.corrcoef(work, t)[0, 1])


def rankwise_variance(source, col: str = "comm_s") -> Dict[str, float]:
    """Spread statistics of per-rank mean times (Fig. 3's y-axis).

    Aggregates the column to per-rank means through the plan engine,
    then reports the spread of those means plus the mean per-rank
    step-to-step standard deviation (jitter).  Both shrink as tuning
    stages are applied.
    """
    agg = Query(source).group_by("rank").agg((col, "mean"), (col, "std")).run()
    means = agg[f"mean_{col}"]
    jitter = agg[f"std_{col}"]
    return {
        "across_rank_std": float(means.std()),
        "across_rank_spread": float(means.max() - means.min()) if means.size else 0.0,
        "mean_within_rank_jitter": float(jitter.mean()) if jitter.size else 0.0,
        "mean": float(means.mean()) if means.size else 0.0,
    }


def straggler_attribution(source, top_k: int = 10) -> ColumnTable:
    """Which ranks most often finished last before synchronization.

    For each step, the straggler is the rank with the maximal
    ``compute_s + comm_s`` (the rank everyone else waited on in the
    collective).  Returns per-rank straggler counts, descending —
    clustered counts on the ranks of a few nodes are the thermal-throttle
    signature of Fig. 2.
    """
    table = materialize(source, columns=("step", "rank", "compute_s", "comm_s"))
    steps = table["step"]
    ranks = table["rank"]
    busy = (table["compute_s"] + table["comm_s"]).astype(np.float64)
    order = np.lexsort((ranks, steps))
    s_sorted, r_sorted, b_sorted = steps[order], ranks[order], busy[order]
    change = np.ones(s_sorted.shape[0], dtype=bool)
    change[1:] = s_sorted[1:] != s_sorted[:-1]
    starts = np.nonzero(change)[0]
    bounds = np.append(starts, s_sorted.shape[0])
    counts: Dict[int, int] = {}
    for i in range(starts.shape[0]):
        seg = slice(bounds[i], bounds[i + 1])
        winner = int(r_sorted[seg][np.argmax(b_sorted[seg])])
        counts[winner] = counts.get(winner, 0) + 1
    if not counts:
        return ColumnTable({"rank": np.empty(0, np.int64), "straggler_steps": np.empty(0, np.int64)})
    items = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    return ColumnTable(
        {
            "rank": np.asarray([r for r, _ in items], dtype=np.int64),
            "straggler_steps": np.asarray([c for _, c in items], dtype=np.int64),
        }
    )


@dataclasses.dataclass(frozen=True)
class PhaseBreakdown:
    """Run-level phase decomposition (the Fig. 6a stacked bars)."""

    compute: float
    comm: float
    sync: float
    lb: float

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.sync + self.lb

    def fractions(self) -> Dict[str, float]:
        t = self.total
        if t == 0:
            return {"compute": 0.0, "comm": 0.0, "sync": 0.0, "lb": 0.0}
        return {
            "compute": self.compute / t,
            "comm": self.comm / t,
            "sync": self.sync / t,
            "lb": self.lb / t,
        }

    def row(self, label: str = "") -> str:
        f = self.fractions()
        return (
            f"{label:<12} total={self.total:10.1f} "
            f"comp={f['compute']:6.1%} comm={f['comm']:6.1%} "
            f"sync={f['sync']:6.1%} lb={f['lb']:6.1%}"
        )


def phase_breakdown(source) -> PhaseBreakdown:
    """Weighted phase totals (rank-seconds) from a rank-step source."""
    wanted = ("compute_s", "comm_s", "sync_s", "lb_s", "weight")
    available = set(source_columns(source))
    table = materialize(source, columns=[c for c in wanted if c in available])
    w = table["weight"] if "weight" in table else np.ones(table.n_rows)
    return PhaseBreakdown(
        compute=float((table["compute_s"] * w).sum()),
        comm=float((table["comm_s"] * w).sum()),
        sync=float((table["sync_s"] * w).sum()),
        lb=float((table["lb_s"] * w).sum()) if "lb_s" in table else 0.0,
    )
