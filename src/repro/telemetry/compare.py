"""Statistical A/B comparison of runs (the before/after tuning method).

Every intervention in §IV is judged by a before/after comparison of
telemetry; with noisy per-step data that judgement needs statistics,
not eyeballs.  :func:`compare_runs` tests each phase column of two
rank-step tables with a Mann–Whitney U test (no normality assumption —
comm times are heavy-tailed by construction) and reports effect sizes,
so a tuning change can be declared significant or noise.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np
from scipy import stats

from .columnar import ColumnTable
from .engine import materialize

__all__ = ["PhaseComparison", "RunComparison", "compare_runs"]


def _prep(source, columns: Sequence[str]) -> ColumnTable:
    """Materialize a comparison side, reading only the tested columns.

    In-memory tables pass through untouched (preserving this module's
    original error order: empty-table ValueError first, then KeyError
    per missing column inside the comparison loop); datasets decode just
    the phase columns via projection pushdown.
    """
    if isinstance(source, ColumnTable):
        return source
    return materialize(source, columns=columns)


@dataclasses.dataclass(frozen=True)
class PhaseComparison:
    """One phase column's A-vs-B statistics."""

    column: str
    mean_a: float
    mean_b: float
    p_value: float
    #: relative change of B vs A (negative = B faster)
    relative_change: float

    def significant(self, alpha: float = 0.01) -> bool:
        return self.p_value < alpha

    def row(self) -> str:
        star = "*" if self.significant() else " "
        return (
            f"{self.column:12s} {self.mean_a * 1e3:10.3f} ms -> "
            f"{self.mean_b * 1e3:10.3f} ms  ({self.relative_change:+7.1%}) "
            f"p={self.p_value:.2e}{star}"
        )


@dataclasses.dataclass
class RunComparison:
    """Full A/B comparison across phase columns."""

    label_a: str
    label_b: str
    phases: List[PhaseComparison]

    def improved(self, column: str, alpha: float = 0.01) -> bool:
        """B significantly faster than A on the given column."""
        for p in self.phases:
            if p.column == column:
                return p.significant(alpha) and p.relative_change < 0
        raise KeyError(f"no comparison for column {column!r}")

    def text(self) -> str:
        lines = [f"=== {self.label_a} vs {self.label_b} "
                 f"(* = significant at p<0.01) ==="]
        lines += [p.row() for p in self.phases]
        return "\n".join(lines)


def compare_runs(
    table_a,
    table_b,
    columns: Sequence[str] = ("compute_s", "comm_s", "sync_s"),
    label_a: str = "A",
    label_b: str = "B",
) -> RunComparison:
    """Mann–Whitney U comparison of phase columns between two runs.

    Either side may be a :class:`ColumnTable` or a
    :class:`~repro.telemetry.dataset.TelemetryDataset`.  Works on raw
    rank-step samples; the two runs need not have equal length.  Raises
    on missing columns or empty tables (a comparison of nothing is a
    bug, not a result).
    """
    table_a = _prep(table_a, columns)
    table_b = _prep(table_b, columns)
    if table_a.n_rows == 0 or table_b.n_rows == 0:
        raise ValueError("cannot compare empty telemetry tables")
    out: List[PhaseComparison] = []
    for col in columns:
        a = table_a[col].astype(np.float64)
        b = table_b[col].astype(np.float64)
        if np.allclose(a, a[0]) and np.allclose(b, b[0]) and a[0] == b[0]:
            p_value = 1.0
        else:
            p_value = float(stats.mannwhitneyu(a, b, alternative="two-sided").pvalue)
        mean_a = float(a.mean())
        mean_b = float(b.mean())
        rel = (mean_b - mean_a) / mean_a if mean_a != 0 else 0.0
        out.append(
            PhaseComparison(
                column=col,
                mean_a=mean_a,
                mean_b=mean_b,
                p_value=p_value,
                relative_change=rel,
            )
        )
    return RunComparison(label_a=label_a, label_b=label_b, phases=out)
