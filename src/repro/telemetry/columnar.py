"""Binary columnar telemetry tables (paper §IV-C / Lesson 4).

The paper's analysis pipeline evolved from TAU CSVs through pandas to
SQL over a columnar database (ClickHouse), and Lesson 4 recommends
binary columnar formats with embedded statistics.  This module is that
storage layer, built from scratch on numpy:

* a :class:`ColumnTable` — named, homogeneous numpy columns of equal
  length;
* a compact binary file format (magic + JSON header + raw little-endian
  column payloads) with **embedded per-column min/max statistics**, so
  readers can skip files/columns without scanning (the Parquet trick
  Lesson 4 highlights);
* zero-copy reads via ``numpy.frombuffer``.

The query engine in :mod:`repro.telemetry.query` operates on these
tables.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "ColumnTable",
    "CorruptTelemetryError",
    "fsync_dir",
    "write_table",
    "read_table",
    "read_stats",
    "read_schema",
]


def fsync_dir(path: "str | Path") -> None:
    """fsync a directory, durably committing renames inside it.

    ``rename`` makes a write *atomic* but not *durable*: after a power
    loss the directory entry itself can be lost unless the directory is
    fsynced too.  Journals and checkpoints call this after every
    rename-into-place.  Platforms whose directory handles reject fsync
    (some network filesystems, Windows) are silently tolerated — the
    rename is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)

_MAGIC = b"RPRC01\n"
_SUPPORTED_KINDS = ("i", "u", "f", "b")


class CorruptTelemetryError(ValueError):
    """A columnar telemetry file is truncated or malformed.

    Raised instead of leaking storage internals (``struct.error``,
    ``json.JSONDecodeError``, numpy buffer errors) so callers can catch
    one exception type for every flavour of on-disk corruption: wrong
    magic, truncated header, garbage header JSON, truncated payload.
    """


class ColumnTable:
    """An immutable-ish table of equal-length named numpy columns.

    Columns are 1-D arrays of integer, unsigned, float, or bool dtype
    (strings are deliberately unsupported — telemetry dimensions are
    coded as integers, the same discipline a columnar DB enforces).
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        cols: Dict[str, np.ndarray] = {}
        length = None
        for name, arr in columns.items():
            arr = np.asarray(arr)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if arr.dtype.kind not in _SUPPORTED_KINDS:
                raise ValueError(
                    f"column {name!r} has unsupported dtype {arr.dtype}; "
                    f"use int/uint/float/bool"
                )
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError(
                    f"column {name!r} has length {arr.shape[0]}, expected {length}"
                )
            cols[name] = arr
        self._cols = cols
        self._len = length or 0

    # ------------------------------------------------------------------ #

    @property
    def n_rows(self) -> int:
        return self._len

    @property
    def names(self) -> List[str]:
        return list(self._cols)

    def __len__(self) -> int:
        return self._len

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnTable):
            return NotImplemented
        if self.names != other.names or self.n_rows != other.n_rows:
            return False
        return all(np.array_equal(self._cols[n], other._cols[n]) for n in self.names)

    # ------------------------------------------------------------------ #

    def select(self, names: Sequence[str]) -> "ColumnTable":
        """Projection: keep only the named columns (in the given order)."""
        return ColumnTable({n: self[n] for n in names})

    def filter(self, mask: np.ndarray) -> "ColumnTable":
        """Row selection by boolean mask or integer index array."""
        mask = np.asarray(mask)
        if mask.dtype == bool and mask.shape != (self._len,):
            raise ValueError(f"mask length {mask.shape} != table rows {self._len}")
        return ColumnTable({n: c[mask] for n, c in self._cols.items()})

    def with_column(self, name: str, values: np.ndarray) -> "ColumnTable":
        """Return a new table with a column added or replaced."""
        cols = dict(self._cols)
        cols[name] = np.asarray(values)
        return ColumnTable(cols)

    def sort_by(self, *names: str) -> "ColumnTable":
        """Stable multi-key sort (last name is the primary key in
        ``numpy.lexsort`` convention reversed — first name is primary)."""
        if not names:
            return self
        keys = tuple(self[n] for n in reversed(names))
        order = np.lexsort(keys)
        return self.filter(order)

    def concat(self, other: "ColumnTable") -> "ColumnTable":
        """Row-wise concatenation (schemas must match exactly)."""
        if set(self.names) != set(other.names):
            raise ValueError(f"schema mismatch: {self.names} vs {other.names}")
        return ColumnTable(
            {n: np.concatenate([self._cols[n], other[n]]) for n in self.names}
        )

    def head(self, n: int = 10) -> "ColumnTable":
        return self.filter(np.arange(min(n, self._len)))

    def stats(self) -> Dict[str, Tuple[float, float]]:
        """Per-column (min, max); the statistics embedded on write."""
        out = {}
        for name, col in self._cols.items():
            if col.size == 0:
                out[name] = (float("nan"), float("nan"))
            else:
                out[name] = (float(col.min()), float(col.max()))
        return out

    def to_rows(self) -> Iterator[Dict[str, object]]:
        """Row iterator (for small result sets / formatting only)."""
        for i in range(self._len):
            yield {n: c[i].item() for n, c in self._cols.items()}

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width text rendering for terminal output."""
        names = self.names
        if not names:
            return "(empty table)"
        rows = min(self._len, max_rows)
        cells = [[f"{self._cols[n][i]:.6g}" if self._cols[n].dtype.kind == "f"
                  else str(self._cols[n][i]) for n in names] for i in range(rows)]
        widths = [max(len(n), *(len(r[j]) for r in cells)) if cells else len(n)
                  for j, n in enumerate(names)]
        lines = ["  ".join(n.rjust(w) for n, w in zip(names, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        if self._len > rows:
            lines.append(f"... ({self._len - rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ColumnTable(rows={self._len}, columns={self.names})"


def write_table(table: ColumnTable, path: str | Path) -> int:
    """Serialize a table to the binary columnar format; returns bytes written.

    Layout: magic, u32 header length, JSON header (schema + per-column
    byte offsets + min/max stats), then the raw column payloads in
    little-endian order.  The header is self-describing, so files remain
    readable as schemas evolve.
    """
    path = Path(path)
    payloads: List[bytes] = []
    meta_cols = []
    offset = 0
    stats = table.stats()
    for name in table.names:
        col = np.ascontiguousarray(table[name])
        le = col.astype(col.dtype.newbyteorder("<"), copy=False)
        raw = le.tobytes()
        meta_cols.append(
            {
                "name": name,
                "dtype": col.dtype.str if col.dtype.kind != "b" else "|b1",
                "offset": offset,
                "nbytes": len(raw),
                "crc32": zlib.crc32(raw),
                "min": None if np.isnan(stats[name][0]) else stats[name][0],
                "max": None if np.isnan(stats[name][1]) else stats[name][1],
            }
        )
        payloads.append(raw)
        offset += len(raw)
    header = json.dumps({"n_rows": table.n_rows, "columns": meta_cols}).encode()
    # Write-to-temp + atomic rename + directory fsync: readers never
    # observe a torn file (a crash mid-write leaves the old file intact,
    # at worst plus a stray .tmp that the next write overwrites), and
    # the rename itself survives a power-loss-style interruption.
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<I", len(header)))
        fh.write(header)
        for p in payloads:
            fh.write(p)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    fsync_dir(path.parent)
    return len(_MAGIC) + 4 + len(header) + offset


def _read_header(fh: io.BufferedReader) -> dict:
    magic = fh.read(len(_MAGIC))
    if magic != _MAGIC:
        raise CorruptTelemetryError(f"not a repro columnar file (magic {magic!r})")
    raw_len = fh.read(4)
    if len(raw_len) < 4:
        raise CorruptTelemetryError("truncated file: header length field cut short")
    (hlen,) = struct.unpack("<I", raw_len)
    raw_header = fh.read(hlen)
    if len(raw_header) < hlen:
        raise CorruptTelemetryError(
            f"truncated header: expected {hlen} bytes, file has {len(raw_header)}"
        )
    try:
        header = json.loads(raw_header.decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptTelemetryError(f"garbage header JSON: {exc}") from exc
    if not isinstance(header, dict) or "columns" not in header:
        raise CorruptTelemetryError("header JSON is not a column manifest")
    return header


def read_stats(path: str | Path) -> Dict[str, Tuple[float, float]]:
    """Read only the embedded column statistics (no payload scan).

    This is the Lesson-4 capability: a query planner can prune whole
    files by predicate against these stats before reading any data.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh)
    return {
        c["name"]: (
            float("nan") if c["min"] is None else c["min"],
            float("nan") if c["max"] is None else c["max"],
        )
        for c in header["columns"]
    }


def read_schema(path: str | Path) -> Dict[str, np.dtype]:
    """Read only the column names and dtypes (header-only, no payload).

    The query planner uses this to validate referenced columns and to
    synthesize correctly-typed empty results when every partition of a
    dataset is pruned.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh)
    try:
        return {c["name"]: np.dtype(c["dtype"]) for c in header["columns"]}
    except (TypeError, ValueError, KeyError) as exc:
        raise CorruptTelemetryError(f"undecodable column manifest: {exc}") from exc


def read_table(path: str | Path, columns: Sequence[str] | None = None) -> ColumnTable:
    """Read a table (optionally a column subset — seeks past the rest)."""
    with open(path, "rb") as fh:
        header = _read_header(fh)
        base = fh.tell()
        want = set(columns) if columns is not None else None
        cols: Dict[str, np.ndarray] = {}
        for c in header["columns"]:
            if want is not None and c["name"] not in want:
                continue
            fh.seek(base + c["offset"])
            raw = fh.read(c["nbytes"])
            if len(raw) < c["nbytes"]:
                raise CorruptTelemetryError(
                    f"truncated payload for column {c['name']!r}: expected "
                    f"{c['nbytes']} bytes, file has {len(raw)}"
                )
            # Per-column CRC32 (absent in files written before the
            # checksum was introduced — those verify nothing).
            expected_crc = c.get("crc32")
            if expected_crc is not None and zlib.crc32(raw) != expected_crc:
                raise CorruptTelemetryError(
                    f"checksum mismatch for column {c['name']!r}: payload "
                    f"bytes do not match the recorded CRC32"
                )
            try:
                arr = np.frombuffer(raw, dtype=np.dtype(c["dtype"]))
            except (ValueError, TypeError) as exc:
                raise CorruptTelemetryError(
                    f"undecodable payload for column {c['name']!r}: {exc}"
                ) from exc
            cols[c["name"]] = arr
        if want is not None:
            missing = want - set(cols)
            if missing:
                raise KeyError(f"columns not in file: {sorted(missing)}")
    # Preserve requested order when a subset was asked for.
    if columns is not None:
        cols = {n: cols[n] for n in columns}
    try:
        return ColumnTable(cols)
    except ValueError as exc:
        # Inconsistent column lengths = the header's schema disagrees
        # with the payloads (schema-mismatch corruption).
        raise CorruptTelemetryError(f"inconsistent table schema: {exc}") from exc
