"""In-simulation telemetry collection.

The collector plays the role of the paper's custom MPI/Kokkos profiling
hooks (§IV-C): the simulation driver calls :meth:`record_step` /
:meth:`record_epoch` as it executes, and the collector accumulates
columnar buffers that finalize into
:class:`~repro.telemetry.columnar.ColumnTable` instances for querying
or binary persistence.

Per-step records at full scale are enormous (53k steps x 4096 ranks);
like the driver, the collector supports *sampled* steps whose phase
values represent per-step means for their epoch — the ``weight`` column
says how many real steps a row stands for.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .columnar import ColumnTable

__all__ = ["TelemetryCollector"]


class TelemetryCollector:
    """Accumulates rank-step and epoch telemetry for one simulated run."""

    def __init__(self, n_ranks: int, ranks_per_node: int) -> None:
        if n_ranks < 1 or ranks_per_node < 1:
            raise ValueError("n_ranks and ranks_per_node must be >= 1")
        self.n_ranks = n_ranks
        self.ranks_per_node = ranks_per_node
        self._rank_ids = np.arange(n_ranks, dtype=np.int64)
        self._node_ids = self._rank_ids // ranks_per_node
        self._steps: Dict[str, List[np.ndarray]] = {
            k: []
            for k in (
                "step", "epoch", "rank", "node", "compute_s", "comm_s",
                "sync_s", "lb_s", "n_blocks", "load", "msgs_local",
                "msgs_remote", "weight",
            )
        }
        self._epochs: Dict[str, List[float]] = {
            k: []
            for k in (
                "epoch", "step_start", "n_steps", "n_blocks", "n_refined",
                "n_coarsened", "placement_s", "migration_blocks", "epoch_wall_s",
            )
        }
        self._mitigations: Dict[str, List[float]] = {
            k: [] for k in ("step", "epoch", "kind", "n_nodes", "cost_s")
        }
        self._transport: Dict[str, List[float]] = {
            k: []
            for k in (
                "step", "epoch", "retransmits", "drops", "dup_suppressed",
                "reorders", "rollback", "degraded", "stall_s",
            )
        }
        # Index into the step-chunk lists up to which rows have already
        # been flushed to an on-disk dataset partition (incremental
        # spooling; see flush_partition).
        self._flush_mark = 0
        # Optional per-rank hardware description (mixed clusters only);
        # None keeps snapshots byte-compatible with homogeneous runs.
        self._hardware: Dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ #

    def set_hardware(self, rank_speed: np.ndarray, rank_nic_gbps: np.ndarray) -> None:
        """Attach the cluster's per-rank hardware class description.

        Recorded once (not per step): hardware is static for a run, so a
        single ``(rank, node, speed, nic_gbps)`` table is enough for any
        downstream query to join against.  Only called on heterogeneous
        clusters, so homogeneous telemetry snapshots are unchanged.
        """
        rank_speed = np.asarray(rank_speed, dtype=np.float64)
        rank_nic_gbps = np.asarray(rank_nic_gbps, dtype=np.float64)
        if rank_speed.shape != (self.n_ranks,) or rank_nic_gbps.shape != (
            self.n_ranks,
        ):
            raise ValueError(
                f"hardware arrays must have shape ({self.n_ranks},); got "
                f"{rank_speed.shape} and {rank_nic_gbps.shape}"
            )
        self._hardware = {
            "rank": self._rank_ids.copy(),
            "node": self._node_ids.copy(),
            "speed": rank_speed,
            "nic_gbps": rank_nic_gbps,
        }

    def hardware_table(self) -> ColumnTable | None:
        """Per-rank hardware classes, or ``None`` on homogeneous runs."""
        if self._hardware is None:
            return None
        return ColumnTable(dict(self._hardware))

    # ------------------------------------------------------------------ #

    def reconfigure(self, n_ranks: int, ranks_per_node: int | None = None) -> None:
        """Adjust the world size mid-run (node eviction shrinks the job).

        Existing records are kept; subsequent :meth:`record_step` calls
        expect arrays of the new size.  Rank/node ids in new records use
        the post-eviction dense renumbering.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if ranks_per_node is not None:
            if ranks_per_node < 1:
                raise ValueError("ranks_per_node must be >= 1")
            self.ranks_per_node = ranks_per_node
        self.n_ranks = n_ranks
        self._rank_ids = np.arange(n_ranks, dtype=np.int64)
        self._node_ids = self._rank_ids // self.ranks_per_node

    def record_step(
        self,
        step: int,
        epoch: int,
        compute_s: np.ndarray,
        comm_s: np.ndarray,
        sync_s: np.ndarray,
        lb_s: np.ndarray | float = 0.0,
        n_blocks: np.ndarray | None = None,
        load: np.ndarray | None = None,
        msgs_local: np.ndarray | None = None,
        msgs_remote: np.ndarray | None = None,
        weight: float = 1.0,
    ) -> None:
        """Record one (possibly representative) step for all ranks.

        ``weight`` is the number of real timesteps this row represents
        (epoch sampling); aggregate queries multiply by it.
        """
        n = self.n_ranks

        def vec(x, dtype=np.float64):
            if x is None:
                return np.zeros(n, dtype=dtype)
            x = np.asarray(x)
            if x.ndim == 0:
                return np.full(n, x, dtype=dtype)
            if x.shape != (n,):
                raise ValueError(f"per-rank array has shape {x.shape}, expected ({n},)")
            return x.astype(dtype, copy=False)

        s = self._steps
        s["step"].append(np.full(n, step, dtype=np.int64))
        s["epoch"].append(np.full(n, epoch, dtype=np.int64))
        s["rank"].append(self._rank_ids)
        s["node"].append(self._node_ids)
        s["compute_s"].append(vec(compute_s))
        s["comm_s"].append(vec(comm_s))
        s["sync_s"].append(vec(sync_s))
        s["lb_s"].append(vec(lb_s))
        s["n_blocks"].append(vec(n_blocks, np.int64))
        s["load"].append(vec(load))
        s["msgs_local"].append(vec(msgs_local, np.int64))
        s["msgs_remote"].append(vec(msgs_remote, np.int64))
        s["weight"].append(np.full(n, weight, dtype=np.float64))

    def record_epoch(
        self,
        epoch: int,
        step_start: int,
        n_steps: int,
        n_blocks: int,
        n_refined: int,
        n_coarsened: int,
        placement_s: float,
        migration_blocks: int,
        epoch_wall_s: float,
    ) -> None:
        e = self._epochs
        e["epoch"].append(epoch)
        e["step_start"].append(step_start)
        e["n_steps"].append(n_steps)
        e["n_blocks"].append(n_blocks)
        e["n_refined"].append(n_refined)
        e["n_coarsened"].append(n_coarsened)
        e["placement_s"].append(placement_s)
        e["migration_blocks"].append(migration_blocks)
        e["epoch_wall_s"].append(epoch_wall_s)

    def record_mitigation(
        self,
        step: int,
        epoch: int,
        kind: int,
        n_nodes: int = 0,
        cost_s: float = 0.0,
    ) -> None:
        """Log one resilience action (eviction, drain enable, checkpoint,
        restore, policy fallback) into the run's telemetry.

        ``kind`` is an integer code (telemetry dimensions are coded as
        ints, like every other column); see
        :data:`repro.resilience.MITIGATION_KINDS`.
        """
        m = self._mitigations
        m["step"].append(step)
        m["epoch"].append(epoch)
        m["kind"].append(kind)
        m["n_nodes"].append(n_nodes)
        m["cost_s"].append(cost_s)

    def record_transport(
        self,
        step: int,
        epoch: int,
        retransmits: int = 0,
        drops: int = 0,
        dup_suppressed: int = 0,
        reorders: int = 0,
        rollback: int = 0,
        degraded: int = 0,
        stall_s: float = 0.0,
    ) -> None:
        """Log one epoch's transport-protocol activity (retransmissions,
        losses, duplicate suppressions, reorders) plus the transactional
        outcome: ``rollback`` = this redistribution aborted to the stale
        placement, ``degraded`` = the epoch ran on a held stale placement.
        """
        t = self._transport
        t["step"].append(step)
        t["epoch"].append(epoch)
        t["retransmits"].append(retransmits)
        t["drops"].append(drops)
        t["dup_suppressed"].append(dup_suppressed)
        t["reorders"].append(reorders)
        t["rollback"].append(rollback)
        t["degraded"].append(degraded)
        t["stall_s"].append(stall_s)

    # ------------------------------------------------------------------ #

    def steps_table(self) -> ColumnTable:
        """Finalize the rank-step telemetry into a columnar table."""
        cols = {}
        for name, chunks in self._steps.items():
            cols[name] = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
            )
        return ColumnTable(cols)

    @property
    def n_recorded_steps(self) -> int:
        """Number of (sampled) step records so far."""
        return len(self._steps["step"])

    def recent_steps_table(self, n_steps: int) -> ColumnTable:
        """The last ``n_steps`` recorded step rows as a table.

        This is the online-monitoring window: the resilient driver runs
        the anomaly detectors over it at each epoch boundary instead of
        waiting for the run to finish.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        cols = {}
        for name, chunks in self._steps.items():
            tail = chunks[-n_steps:]
            cols[name] = (
                np.concatenate(tail) if tail else np.empty(0, dtype=np.float64)
            )
        return ColumnTable(cols)

    def flush_partition(self, dataset, label: str | None = None) -> str | None:
        """Spool step rows recorded since the last flush to ``dataset``.

        Writes the unflushed rows as one new partition of a
        :class:`~repro.telemetry.dataset.TelemetryDataset` (anything
        with an ``append(table, label=...)`` method works) and advances
        the flush mark.  Returns the new partition's file name, or
        ``None`` when nothing new was recorded.

        This is the incremental-persistence primitive behind
        :class:`repro.engine.TelemetrySpoolHook`: flushed once per
        epoch, a long run is queryable on disk *while it executes*, and
        each epoch's partition carries its own zone maps so planned
        queries prune by step/epoch range for free.
        """
        chunks = self._steps["step"]
        if self._flush_mark >= len(chunks):
            return None
        mark = self._flush_mark
        cols = {
            name: np.concatenate(ch[mark:]) for name, ch in self._steps.items()
        }
        self._flush_mark = len(chunks)
        return dataset.append(ColumnTable(cols), label=label)

    def epochs_table(self) -> ColumnTable:
        cols = {}
        int_cols = {
            "epoch", "step_start", "n_steps", "n_blocks",
            "n_refined", "n_coarsened", "migration_blocks",
        }
        for name, vals in self._epochs.items():
            dtype = np.int64 if name in int_cols else np.float64
            cols[name] = np.asarray(vals, dtype=dtype)
        return ColumnTable(cols)

    def mitigations_table(self) -> ColumnTable:
        cols = {}
        for name, vals in self._mitigations.items():
            dtype = np.float64 if name == "cost_s" else np.int64
            cols[name] = np.asarray(vals, dtype=dtype)
        return ColumnTable(cols)

    def transport_table(self) -> ColumnTable:
        cols = {}
        for name, vals in self._transport.items():
            dtype = np.float64 if name == "stall_s" else np.int64
            cols[name] = np.asarray(vals, dtype=dtype)
        return ColumnTable(cols)

    # ------------------------------------------------------------------ #

    def snapshot_tables(self) -> Dict[str, ColumnTable]:
        """Finalized copies of all accumulated telemetry (checkpointing)."""
        out = {
            "steps": self.steps_table(),
            "epochs": self.epochs_table(),
            "mitigations": self.mitigations_table(),
            "transport": self.transport_table(),
        }
        hw = self.hardware_table()
        if hw is not None:
            out["hardware"] = hw
        return out

    def restore_tables(self, tables: Dict[str, ColumnTable]) -> None:
        """Reset state to a :meth:`snapshot_tables` snapshot.

        Step records are re-chunked at boundaries where the ``step``
        column changes value (each :meth:`record_step` call writes a
        constant-step chunk, and steps increase monotonically across a
        run), so windowed queries keep working after a restore even when
        chunks have different rank counts (pre/post eviction).
        """
        steps = tables["steps"]
        sv = steps["step"]
        if sv.size:
            change = np.nonzero(np.diff(sv) != 0)[0] + 1
            bounds = [0, *change.tolist(), sv.shape[0]]
        else:
            bounds = [0, 0]
        for name in self._steps:
            col = steps[name]
            self._steps[name] = [
                col[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
            ]
        # Restored rows are treated as already persisted: a restore
        # rewinds to a checkpoint whose rows were spooled (or discarded)
        # by the run that wrote it, so re-flushing them would duplicate
        # partitions.
        self._flush_mark = len(self._steps["step"])
        epochs = tables["epochs"]
        for name in self._epochs:
            self._epochs[name] = epochs[name].tolist()
        mit = tables.get("mitigations")
        if mit is not None:
            for name in self._mitigations:
                self._mitigations[name] = mit[name].tolist()
        tr = tables.get("transport")
        if tr is not None:
            for name in self._transport:
                self._transport[name] = tr[name].tolist()
        hw = tables.get("hardware")
        if hw is not None:
            self._hardware = {k: np.asarray(hw[k]) for k in ("rank", "node", "speed", "nic_gbps")}

    def phase_totals(self) -> Dict[str, float]:
        """Weighted rank-second totals per phase across the whole run."""
        t = self.steps_table()
        w = t["weight"]
        return {
            "compute": float((t["compute_s"] * w).sum()),
            "comm": float((t["comm_s"] * w).sum()),
            "sync": float((t["sync_s"] * w).sum()),
            "lb": float((t["lb_s"] * w).sum()),
        }
