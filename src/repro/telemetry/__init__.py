"""Structured, queryable telemetry pipeline (paper §IV-C / Lesson 4).

Collection (simulation hooks) → binary columnar storage with embedded
statistics → vectorized query engine (fluent + SQL dialect) →
diagnosis-oriented analytics (work↔time correlation, rankwise variance,
straggler attribution, anomaly detectors).
"""

from .analysis import (
    PhaseBreakdown,
    phase_breakdown,
    rankwise_variance,
    straggler_attribution,
    work_time_correlation,
)
from .anomaly import (
    AnomalyAssessment,
    SpikeReport,
    ThrottleReport,
    WindowConfig,
    assess_window,
    detect_throttled_nodes,
    detect_wait_spikes,
)
from .collector import TelemetryCollector
from .dataset import Predicate, TelemetryDataset
from .triggers import TriggerRule, TriggerSet, TriggeredCollector
from .columnar import (
    ColumnTable,
    CorruptTelemetryError,
    read_stats,
    read_table,
    write_table,
)
from .compare import PhaseComparison, RunComparison, compare_runs
from .tracefmt import EventTrace, TraceEvent, trace_to_table
from .query import AGGREGATES, Query, sql
from .report import Finding, RunReport, diagnose
from .schema import EPOCH_SCHEMA, RANK_STEP_SCHEMA

__all__ = [
    "AGGREGATES",
    "AnomalyAssessment",
    "ColumnTable",
    "CorruptTelemetryError",
    "EPOCH_SCHEMA",
    "WindowConfig",
    "assess_window",
    "EventTrace",
    "PhaseComparison",
    "RunComparison",
    "TraceEvent",
    "compare_runs",
    "trace_to_table",
    "PhaseBreakdown",
    "Predicate",
    "TelemetryDataset",
    "TriggerRule",
    "TriggerSet",
    "TriggeredCollector",
    "Query",
    "Finding",
    "RunReport",
    "diagnose",
    "RANK_STEP_SCHEMA",
    "SpikeReport",
    "TelemetryCollector",
    "ThrottleReport",
    "detect_throttled_nodes",
    "detect_wait_spikes",
    "phase_breakdown",
    "rankwise_variance",
    "read_stats",
    "read_table",
    "sql",
    "straggler_attribution",
    "work_time_correlation",
    "write_table",
]
