"""Structured, queryable telemetry pipeline (paper §IV-C / Lesson 4).

Collection (simulation hooks) → binary columnar storage with embedded
statistics → lazy logical-plan query engine (fluent + SQL dialect over
``Scan → Filter → Project → GroupAgg → Sort → Limit``, with predicate
and projection pushdown into partitioned storage) → diagnosis-oriented
analytics (work↔time correlation, rankwise variance, straggler
attribution, anomaly detectors).
"""

from .analysis import (
    PhaseBreakdown,
    phase_breakdown,
    rankwise_variance,
    straggler_attribution,
    work_time_correlation,
)
from .anomaly import (
    AnomalyAssessment,
    SpikeReport,
    ThrottleReport,
    WindowConfig,
    assess_window,
    detect_throttled_nodes,
    detect_wait_spikes,
)
from .collector import TelemetryCollector
from .dataset import Predicate, TelemetryDataset
from .triggers import TriggerRule, TriggerSet, TriggeredCollector
from .columnar import (
    ColumnTable,
    CorruptTelemetryError,
    read_schema,
    read_stats,
    read_table,
    write_table,
)
from .compare import PhaseComparison, RunComparison, compare_runs
from .engine import (
    ExecutionReport,
    ScanReport,
    execute,
    explain,
    materialize,
)
from .plan import (
    ColumnPredicate,
    Filter,
    GroupAgg,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    optimize,
)
from .tracefmt import EventTrace, TraceEvent, trace_to_table
from .query import AGGREGATES, Query, sql, sql_query
from .report import Finding, RunReport, diagnose
from .schema import EPOCH_SCHEMA, RANK_STEP_SCHEMA

__all__ = [
    "AGGREGATES",
    "AnomalyAssessment",
    "ColumnPredicate",
    "ColumnTable",
    "CorruptTelemetryError",
    "EPOCH_SCHEMA",
    "ExecutionReport",
    "Filter",
    "GroupAgg",
    "Limit",
    "PlanNode",
    "Project",
    "Scan",
    "ScanReport",
    "Sort",
    "WindowConfig",
    "assess_window",
    "EventTrace",
    "PhaseComparison",
    "RunComparison",
    "TraceEvent",
    "compare_runs",
    "trace_to_table",
    "PhaseBreakdown",
    "Predicate",
    "TelemetryDataset",
    "TriggerRule",
    "TriggerSet",
    "TriggeredCollector",
    "Query",
    "Finding",
    "RunReport",
    "diagnose",
    "RANK_STEP_SCHEMA",
    "SpikeReport",
    "TelemetryCollector",
    "ThrottleReport",
    "detect_throttled_nodes",
    "detect_wait_spikes",
    "execute",
    "explain",
    "materialize",
    "optimize",
    "phase_breakdown",
    "rankwise_variance",
    "read_schema",
    "read_stats",
    "read_table",
    "sql",
    "sql_query",
    "straggler_attribution",
    "work_time_correlation",
    "write_table",
]
