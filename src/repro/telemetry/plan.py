"""Logical query plans over telemetry sources (paper §IV-C / Lesson 4).

The paper's analysis pipeline became tractable only once telemetry was
*queryable at scale*: binary columnar partitions with embedded
statistics, consumed through a query layer that skips what a question
does not need.  This module is the logical half of that layer — a small
dataflow algebra in the lazy style of the columnar OLAP engines the
paper migrated to:

``Scan → Filter → Project → GroupAgg → Sort → Limit``

Plans are immutable trees built by the :class:`~repro.telemetry.query.
Query` builder (and its SQL dialect) and executed by
:mod:`repro.telemetry.engine`.  The optimizer here rewrites a plan
before execution:

* **predicate pushdown** — ``Filter`` nodes sitting on a ``Scan`` merge
  into it, so the executor can prune whole dataset partitions against
  their embedded zone maps (min/max column statistics) without reading
  any payload;
* **projection pushdown** — the set of columns each node actually needs
  is propagated down to the ``Scan``, so unrequested column payloads
  are never decoded (``read_table(columns=...)`` seeks past them).

The optimizer never changes results: pruning is conservative (a
partition is skipped only when its statistics *prove* no row can
match), and row-level filtering always re-applies the exact predicate.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = [
    "COMPARISONS",
    "ColumnPredicate",
    "PlanNode",
    "Scan",
    "Filter",
    "Project",
    "GroupAgg",
    "Sort",
    "Limit",
    "optimize",
    "required_columns",
]

#: comparison operator -> vectorized mask function
COMPARISONS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "==": lambda c, v: c == v,
    "!=": lambda c, v: c != v,
    "<": lambda c, v: c < v,
    "<=": lambda c, v: c <= v,
    ">": lambda c, v: c > v,
    ">=": lambda c, v: c >= v,
}


@dataclasses.dataclass(frozen=True)
class ColumnPredicate:
    """One conjunctive comparison: ``column <op> value``.

    The row-level semantics live in :meth:`mask`; :meth:`bounds` derives
    the inclusive ``[lo, hi]`` over-approximation a partition pruner may
    test against zone maps (``!=`` admits no bound and never prunes).
    """

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise ValueError(
                f"unknown operator {self.op!r}; known: {sorted(COMPARISONS)}"
            )

    def mask(self, table) -> np.ndarray:
        """Exact boolean row mask against a ColumnTable."""
        return COMPARISONS[self.op](table[self.column], self.value)

    def bounds(self) -> Tuple[Optional[float], Optional[float]]:
        """Inclusive ``(lo, hi)`` superset of matching values (None = open).

        Strict comparisons widen to their inclusive neighbour — pruning
        only needs a superset; the executor re-applies :meth:`mask`
        row-wise on every partition it does read.
        """
        if self.op == "==":
            return (self.value, self.value)
        if self.op in ("<", "<="):
            return (None, self.value)
        if self.op in (">", ">="):
            return (self.value, None)
        return (None, None)  # != — cannot prune

    def might_match(self, stats: Dict[str, Tuple[float, float]]) -> bool:
        """Could any row of a partition with these zone maps match?

        Unknown columns cannot be pruned safely; empty partitions
        (NaN statistics) hold no rows at all.
        """
        if self.column not in stats:
            return True
        cmin, cmax = stats[self.column]
        if math.isnan(cmin):
            return False
        lo, hi = self.bounds()
        if lo is not None and cmax < lo:
            return False
        if hi is not None and cmin > hi:
            return False
        return True

    def describe(self) -> str:
        return f"{self.column} {self.op} {self.value:g}"


# ---------------------------------------------------------------------- #
# plan nodes
# ---------------------------------------------------------------------- #


class PlanNode:
    """Base class for logical plan nodes (immutable tree)."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class Scan(PlanNode):
    """Leaf: produce rows from a source.

    ``source`` is either an in-memory
    :class:`~repro.telemetry.columnar.ColumnTable` or a dataset-like
    object exposing ``partition_files()`` / ``schema()``
    (:class:`~repro.telemetry.dataset.TelemetryDataset`).  ``columns``
    and ``predicates`` are filled in by the optimizer's pushdown passes;
    hand-built scans may also set them directly.
    """

    source: object
    columns: Optional[Tuple[str, ...]] = None
    predicates: Tuple[ColumnPredicate, ...] = ()


@dataclasses.dataclass(frozen=True)
class Filter(PlanNode):
    """Keep rows matching *all* predicates (masks are fused, one pass)."""

    child: PlanNode
    predicates: Tuple[ColumnPredicate, ...]


@dataclasses.dataclass(frozen=True)
class Project(PlanNode):
    """Keep only the named columns, in the given order."""

    child: PlanNode
    columns: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class GroupAgg(PlanNode):
    """Group by ``keys`` (may be empty = one global group) and aggregate.

    ``aggs`` are ``(column, function)`` pairs naming functions in
    :data:`repro.telemetry.engine.AGGREGATES`; output columns are named
    ``{function}_{column}`` after the sorted group keys.
    """

    child: PlanNode
    keys: Tuple[str, ...]
    aggs: Tuple[Tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class Sort(PlanNode):
    """Stable sort by one column (descending reverses the stable order)."""

    child: PlanNode
    column: str
    desc: bool = False


@dataclasses.dataclass(frozen=True)
class Limit(PlanNode):
    """Keep the first ``n`` rows."""

    child: PlanNode
    n: int


# ---------------------------------------------------------------------- #
# optimizer
# ---------------------------------------------------------------------- #


def _ordered_union(*column_sets: Iterable[str]) -> Tuple[str, ...]:
    out: Dict[str, None] = {}
    for cols in column_sets:
        for c in cols:
            out[c] = None
    return tuple(out)


def _push_projection(node: PlanNode, needed: Optional[Tuple[str, ...]]) -> PlanNode:
    """Propagate the needed-column set down to the Scan.

    ``needed is None`` means "everything" — the plan's output includes
    all source columns, so the scan must read them all.
    """
    if isinstance(node, Scan):
        if needed is None or node.columns is not None:
            return node
        return dataclasses.replace(node, columns=needed)
    if isinstance(node, Project):
        child = _push_projection(node.child, _ordered_union(node.columns))
        return dataclasses.replace(node, child=child)
    if isinstance(node, GroupAgg):
        # Output columns are derived; the child needs exactly the keys
        # plus the aggregated inputs, whatever the parent asked for.
        child_needed = _ordered_union(node.keys, (c for c, _ in node.aggs))
        return dataclasses.replace(
            node, child=_push_projection(node.child, child_needed)
        )
    if isinstance(node, Sort):
        child_needed = (
            None if needed is None else _ordered_union(needed, (node.column,))
        )
        return dataclasses.replace(
            node, child=_push_projection(node.child, child_needed)
        )
    if isinstance(node, Filter):
        child_needed = (
            None
            if needed is None
            else _ordered_union(needed, (p.column for p in node.predicates))
        )
        return dataclasses.replace(
            node, child=_push_projection(node.child, child_needed)
        )
    if isinstance(node, Limit):
        return dataclasses.replace(node, child=_push_projection(node.child, needed))
    raise TypeError(f"unknown plan node {type(node).__name__}")


def _push_predicates(node: PlanNode) -> PlanNode:
    """Merge Filter nodes sitting directly on a Scan into the Scan."""
    if isinstance(node, Scan):
        return node
    if isinstance(node, Filter):
        child = _push_predicates(node.child)
        if isinstance(child, Scan):
            return dataclasses.replace(
                child, predicates=child.predicates + node.predicates
            )
        if isinstance(child, Filter):
            return dataclasses.replace(
                child, predicates=child.predicates + node.predicates
            )
        return dataclasses.replace(node, child=child)
    return dataclasses.replace(node, child=_push_predicates(node.child))


def optimize(node: PlanNode) -> PlanNode:
    """Apply projection then predicate pushdown; results are unchanged."""
    return _push_predicates(_push_projection(node, None))


def required_columns(node: PlanNode) -> Optional[Tuple[str, ...]]:
    """Columns the optimized plan would read from its scan (None = all)."""
    opt = optimize(node)
    while not isinstance(opt, Scan):
        opt = opt.child
    return opt.columns
