"""Event-trace format and conversion to structured tables (§IV-C).

The paper's workflow began with standard tracing (TAU → OTF2/CSV) and
hit a wall: "unstructured, high-volume output ... unsuited for
query-driven diagnosis".  This module reproduces that migration path:

* :class:`EventTrace` — a classic enter/leave/send/recv event trace
  (the OTF2/Chrome-trace shape), with JSON-lines serialization;
* :func:`trace_to_table` — the *conversion step the paper had to
  build*: fold raw events into the per-(step, rank) phase table the
  query engine operates on.

The benches use it to show the storage/latency gap between trace-shaped
and columnar telemetry for the same information.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from .columnar import ColumnTable

__all__ = ["TraceEvent", "EventTrace", "trace_to_table"]

#: canonical region names for BSP phase attribution
_PHASE_OF_REGION = {
    "compute": "compute_s",
    "boundary_exchange": "comm_s",
    "mpi_wait": "comm_s",
    "mpi_allreduce": "sync_s",
    "redistribution": "lb_s",
}


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One trace record: ENTER/LEAVE of a region on a rank.

    ``meta`` carries free-form attributes (step number, message peer,
    bytes) — exactly the loosely-typed payload that makes raw traces
    painful to query.
    """

    kind: str            # "ENTER" | "LEAVE"
    rank: int
    region: str
    time_s: float
    meta: Dict[str, float] = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "k": self.kind,
                "r": self.rank,
                "g": self.region,
                "t": self.time_s,
                "m": self.meta,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        d = json.loads(line)
        return cls(kind=d["k"], rank=d["r"], region=d["g"], time_s=d["t"],
                   meta=d.get("m", {}))


class EventTrace:
    """An append-only event trace with JSON-lines persistence."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def enter(self, rank: int, region: str, time_s: float, **meta) -> None:
        self.events.append(TraceEvent("ENTER", rank, region, time_s, dict(meta)))

    def leave(self, rank: int, region: str, time_s: float, **meta) -> None:
        self.events.append(TraceEvent("LEAVE", rank, region, time_s, dict(meta)))

    def record_region(
        self, rank: int, region: str, t0: float, t1: float, **meta
    ) -> None:
        """Convenience: paired enter/leave."""
        if t1 < t0:
            raise ValueError(f"region {region} leaves before entering")
        self.enter(rank, region, t0, **meta)
        self.leave(rank, region, t1, **meta)

    def write_jsonl(self, path: str | Path) -> int:
        """Persist as JSON lines; returns bytes written."""
        text = "\n".join(e.to_json() for e in self.events)
        data = text.encode()
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "EventTrace":
        trace = cls()
        for line in Path(path).read_text().splitlines():
            if line.strip():
                trace.events.append(TraceEvent.from_json(line))
        return trace

    def __len__(self) -> int:
        return len(self.events)


def trace_to_table(trace: EventTrace) -> ColumnTable:
    """Fold an event trace into the per-(step, rank) phase table.

    Region durations are attributed to the phase columns via the region
    name (compute / boundary_exchange / mpi_wait / mpi_allreduce /
    redistribution); the ``step`` comes from the event metadata.
    Unpaired or unknown-region events raise — silent drops are how trace
    analysis quietly lies.
    """
    # (rank, region, step) -> entry time stack
    open_regions: Dict[Tuple[int, str, int], List[float]] = {}
    acc: Dict[Tuple[int, int], Dict[str, float]] = {}

    for ev in trace.events:
        if ev.region not in _PHASE_OF_REGION:
            raise ValueError(f"unknown region {ev.region!r} in trace")
        step = int(ev.meta.get("step", -1))
        if step < 0:
            raise ValueError(f"event missing step metadata: {ev}")
        key = (ev.rank, ev.region, step)
        if ev.kind == "ENTER":
            open_regions.setdefault(key, []).append(ev.time_s)
        elif ev.kind == "LEAVE":
            stack = open_regions.get(key)
            if not stack:
                raise ValueError(f"LEAVE without ENTER: {ev}")
            t0 = stack.pop()
            phase = _PHASE_OF_REGION[ev.region]
            cell = acc.setdefault(
                (step, ev.rank),
                {"compute_s": 0.0, "comm_s": 0.0, "sync_s": 0.0, "lb_s": 0.0},
            )
            cell[phase] += ev.time_s - t0
        else:
            raise ValueError(f"unknown event kind {ev.kind!r}")

    dangling = {k: v for k, v in open_regions.items() if v}
    if dangling:
        raise ValueError(f"unclosed regions in trace: {sorted(dangling)[:3]}")

    keys = sorted(acc)
    return ColumnTable(
        {
            "step": np.asarray([k[0] for k in keys], dtype=np.int64),
            "rank": np.asarray([k[1] for k in keys], dtype=np.int64),
            "compute_s": np.asarray([acc[k]["compute_s"] for k in keys]),
            "comm_s": np.asarray([acc[k]["comm_s"] for k in keys]),
            "sync_s": np.asarray([acc[k]["sync_s"] for k in keys]),
            "lb_s": np.asarray([acc[k]["lb_s"] for k in keys]),
        }
    )
