"""Programmable telemetry triggers (paper §IV-C).

"As our needs evolved, we wanted programmable telemetry triggers based
on reconstructed application state" — always-on fine-grained collection
is too expensive, but aggregate profiles hide transients.  Triggers
bridge the gap: cheap per-step summary rules decide *when* to keep the
expensive per-rank detail.

A :class:`TriggerSet` evaluates rules against each step's per-rank
phase arrays; if any rule fires, the step's full detail is recorded
(plus a configurable number of pre/post steps from a ring buffer, so
the lead-up to an anomaly is captured — the eBPF-style capability the
paper leaned on).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Deque, Dict, List, Tuple

import numpy as np

from .collector import TelemetryCollector

__all__ = ["TriggerRule", "TriggerSet", "TriggeredCollector"]

#: rule signature: (step_index, per-rank phase dict) -> fire?
RuleFn = Callable[[int, Dict[str, np.ndarray]], bool]


@dataclasses.dataclass(frozen=True)
class TriggerRule:
    """A named trigger predicate over one step's per-rank phases."""

    name: str
    fn: RuleFn

    # ---- common rule constructors ------------------------------------ #

    @staticmethod
    def phase_above(phase: str, threshold_s: float, name: str | None = None) -> "TriggerRule":
        """Fire when any rank's phase time exceeds a threshold."""

        def fn(step: int, phases: Dict[str, np.ndarray]) -> bool:
            return bool(np.max(phases[phase]) > threshold_s)

        return TriggerRule(name or f"{phase}>{threshold_s:g}s", fn)

    @staticmethod
    def imbalance_above(phase: str, ratio: float, name: str | None = None) -> "TriggerRule":
        """Fire when max/mean of a phase exceeds ``ratio``."""

        def fn(step: int, phases: Dict[str, np.ndarray]) -> bool:
            vals = phases[phase]
            mean = float(vals.mean())
            return mean > 0 and float(vals.max()) / mean > ratio

        return TriggerRule(name or f"{phase} imbalance>{ratio:g}", fn)

    @staticmethod
    def every(n: int, name: str | None = None) -> "TriggerRule":
        """Fire every ``n`` steps (periodic background sampling)."""
        if n < 1:
            raise ValueError("n must be >= 1")

        def fn(step: int, phases: Dict[str, np.ndarray]) -> bool:
            return step % n == 0

        return TriggerRule(name or f"every-{n}", fn)


class TriggerSet:
    """A collection of rules; tracks per-rule fire counts."""

    def __init__(self, rules: List[TriggerRule]) -> None:
        self.rules = list(rules)
        self.fire_counts: Dict[str, int] = {r.name: 0 for r in self.rules}

    def evaluate(self, step: int, phases: Dict[str, np.ndarray]) -> List[str]:
        """Names of the rules that fire for this step."""
        fired = []
        for rule in self.rules:
            if rule.fn(step, phases):
                self.fire_counts[rule.name] += 1
                fired.append(rule.name)
        return fired


class TriggeredCollector:
    """Records full per-rank detail only around triggered steps.

    Wraps a :class:`TelemetryCollector`; un-triggered steps go into a
    bounded ring buffer.  When a rule fires, the buffered lead-up (up to
    ``pre_steps``) is flushed, the firing step is recorded, and the next
    ``post_steps`` are recorded unconditionally.
    """

    def __init__(
        self,
        collector: TelemetryCollector,
        triggers: TriggerSet,
        pre_steps: int = 2,
        post_steps: int = 2,
    ) -> None:
        if pre_steps < 0 or post_steps < 0:
            raise ValueError("pre/post steps must be >= 0")
        self.collector = collector
        self.triggers = triggers
        self.pre_steps = pre_steps
        self.post_steps = post_steps
        self._ring: Deque[Tuple[int, int, Dict[str, np.ndarray]]] = collections.deque(
            maxlen=max(pre_steps, 1)
        )
        self._post_remaining = 0
        self.steps_seen = 0
        self.steps_recorded = 0

    def observe(
        self,
        step: int,
        epoch: int,
        compute_s: np.ndarray,
        comm_s: np.ndarray,
        sync_s: np.ndarray,
        **extra,
    ) -> List[str]:
        """Feed one step; returns names of rules that fired."""
        self.steps_seen += 1
        phases = {"compute_s": compute_s, "comm_s": comm_s, "sync_s": sync_s}
        fired = self.triggers.evaluate(step, phases)

        def record(s: int, e: int, ph: Dict[str, np.ndarray], **kw) -> None:
            self.collector.record_step(
                s, e, ph["compute_s"], ph["comm_s"], ph["sync_s"], **kw
            )
            self.steps_recorded += 1

        if fired:
            # Flush the buffered lead-up, oldest first.
            while self._ring:
                s, e, ph = self._ring.popleft()
                record(s, e, ph)
            record(step, epoch, phases, **extra)
            self._post_remaining = self.post_steps
        elif self._post_remaining > 0:
            record(step, epoch, phases, **extra)
            self._post_remaining -= 1
        elif self.pre_steps > 0:
            self._ring.append((step, epoch, dict(phases)))
        return fired

    @property
    def reduction_ratio(self) -> float:
        """Fraction of steps whose detail was dropped (collection savings)."""
        if self.steps_seen == 0:
            return 0.0
        return 1.0 - self.steps_recorded / self.steps_seen
