"""Query interfaces over columnar telemetry (paper §IV-C / Lesson 4).

Two interfaces over tables *and* partitioned datasets:

* a fluent builder — ``Query(t).where("rank", "<", 16).group_by("step")
  .agg(("comm_s", "mean"), ("comm_s", "p99")).run()``;
* a small SQL dialect — ``sql(t, "SELECT rank, mean(comm_s) FROM t
  WHERE step >= 100 GROUP BY rank ORDER BY mean_comm_s DESC LIMIT 10")``
  — mirroring how the paper's diagnosis settled on "SQL over telemetry
  grouped by timestep and sorted by rank".

Both are **thin constructors over the logical plan layer**
(:mod:`repro.telemetry.plan`): nothing is read or computed until
:meth:`Query.run`, which hands the plan to the executor in
:mod:`repro.telemetry.engine`.  Against a
:class:`~repro.telemetry.dataset.TelemetryDataset` source the optimizer
pushes predicates into partition pruning (zone maps) and projections
into column-selective reads, so a selective query touches only the
partitions and columns it needs; :meth:`Query.explain` shows the
decision.  Results are bit-identical to the historical eager path.

Group-by stays vectorized: composite keys via lexsort + change
detection and aggregation via sorted ``reduceat`` — no per-group Python
loops, so million-row tables stay interactive (the low-latency property
Lesson 4 calls essential for hypothesis-driven exploration).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .columnar import ColumnTable
from .engine import AGGREGATES, ExecutionReport, execute
from .engine import explain as explain_plan
from .engine import source_columns
from .plan import (
    COMPARISONS,
    ColumnPredicate,
    Filter,
    GroupAgg,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)

__all__ = ["Query", "sql", "sql_query", "AGGREGATES"]

#: any queryable source: an in-memory table or a partitioned dataset
Source = Union[ColumnTable, object]


class Query:
    """Composable filter / group-by / aggregate over a table or dataset.

    Building is lazy and cheap; :meth:`run` assembles a logical plan and
    executes it through the optimizer, :meth:`explain` renders the
    optimized plan (including partitions pruned vs scanned for dataset
    sources), and :meth:`plan` exposes the unoptimized tree.
    """

    def __init__(self, source: Source) -> None:
        self.source = source
        #: kept for backwards compatibility with the eager-era attribute
        self.table = source if isinstance(source, ColumnTable) else None
        self._preds: List[ColumnPredicate] = []
        self._group: List[str] = []
        self._aggs: List[Tuple[str, str]] = []
        self._order: Tuple[str, bool] | None = None
        self._limit: int | None = None
        self._select: List[str] | None = None

    # ------------------------------------------------------------------ #

    def _check_column(self, name: str) -> None:
        """Eager schema validation (same KeyError the eager path raised)."""
        if isinstance(self.source, ColumnTable):
            _ = self.source[name]
            return
        names = source_columns(self.source)
        if names and name not in names:
            raise KeyError(f"no column {name!r}; have {names}")

    def where(self, column: str, op: str, value: float) -> "Query":
        """Add a conjunctive predicate (``column <op> value``)."""
        if op not in COMPARISONS:
            raise ValueError(f"unknown operator {op!r}; known: {sorted(COMPARISONS)}")
        self._check_column(column)
        self._preds.append(ColumnPredicate(column, op, value))
        return self

    def group_by(self, *columns: str) -> "Query":
        for c in columns:
            self._check_column(c)
        self._group = list(columns)
        return self

    def agg(self, *specs: Tuple[str, str]) -> "Query":
        """Add aggregations as ``(column, func)`` pairs.

        Output columns are named ``{func}_{column}``.
        """
        for col, fn in specs:
            self._check_column(col)
            if fn not in AGGREGATES:
                raise ValueError(f"unknown aggregate {fn!r}; known: {sorted(AGGREGATES)}")
        self._aggs.extend(specs)
        return self

    def order_by(self, column: str, desc: bool = False) -> "Query":
        self._order = (column, desc)
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValueError("limit must be >= 0")
        self._limit = n
        return self

    def select(self, *columns: str) -> "Query":
        """Final projection applied after every other stage."""
        self._select = list(columns)
        return self

    # ------------------------------------------------------------------ #

    def plan(self) -> PlanNode:
        """The (unoptimized) logical plan this query describes."""
        if self._group and not self._aggs:
            raise ValueError("group_by requires at least one agg()")
        node: PlanNode = Scan(self.source)
        if self._preds:
            node = Filter(node, tuple(self._preds))
        if self._group or self._aggs:
            node = GroupAgg(node, tuple(self._group), tuple(self._aggs))
        if self._order is not None:
            node = Sort(node, self._order[0], self._order[1])
        if self._limit is not None:
            node = Limit(node, self._limit)
        if self._select is not None:
            node = Project(node, tuple(self._select))
        return node

    def run(self, report: Optional[ExecutionReport] = None) -> ColumnTable:
        """Execute: filter → group/aggregate → order → limit → select."""
        return execute(self.plan(), report)

    def explain(self) -> str:
        """The optimized plan, with partitions pruned vs scanned."""
        return explain_plan(self.plan())


# ---------------------------------------------------------------------- #
# tiny SQL dialect
# ---------------------------------------------------------------------- #

_SQL_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+FROM\s+\w+"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>.+?))?"
    r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGG_RE = re.compile(r"^(?P<fn>\w+)\(\s*(?P<col>\w+)\s*\)$")
_PRED_RE = re.compile(r"^(?P<col>\w+)\s*(?P<op>==|!=|<=|>=|<|>|=)\s*(?P<val>[-+.\w]+)$")


def sql_query(source: Source, statement: str) -> Query:
    """Parse a SELECT statement into a :class:`Query` (not yet executed).

    Grammar: ``SELECT item[, ...] FROM <any name> [WHERE pred [AND ...]]
    [GROUP BY col[, ...]] [ORDER BY col [DESC]] [LIMIT n]`` where an item
    is a column name or ``fn(column)`` with ``fn`` in
    :data:`AGGREGATES`, and predicates compare a column to a literal.

    The returned query can be executed (:meth:`Query.run`) or inspected
    (:meth:`Query.explain`) — the ``repro query --explain`` CLI path.
    """
    m = _SQL_RE.match(statement)
    if not m:
        raise ValueError(f"cannot parse SQL: {statement!r}")
    q = Query(source)

    if m.group("where"):
        for pred in re.split(r"\s+AND\s+", m.group("where"), flags=re.IGNORECASE):
            pm = _PRED_RE.match(pred.strip())
            if not pm:
                raise ValueError(f"cannot parse predicate {pred!r}")
            op = "==" if pm.group("op") == "=" else pm.group("op")
            q.where(pm.group("col"), op, float(pm.group("val")))

    plain_cols: List[str] = []
    for item in (s.strip() for s in m.group("select").split(",")):
        if item == "*":
            plain_cols.extend(source_columns(source))
            continue
        am = _AGG_RE.match(item)
        if am:
            q.agg((am.group("col"), am.group("fn").lower()))
        else:
            plain_cols.append(item)

    if m.group("group"):
        q.group_by(*[c.strip() for c in m.group("group").split(",")])
    elif q._aggs and plain_cols:
        # e.g. SELECT rank, mean(x) — implicit group by the plain columns
        q.group_by(*plain_cols)

    if m.group("order"):
        spec = m.group("order").strip()
        desc = bool(re.search(r"\s+DESC$", spec, re.IGNORECASE))
        col = re.sub(r"\s+(DESC|ASC)$", "", spec, flags=re.IGNORECASE).strip()
        q.order_by(col, desc=desc)
    if m.group("limit"):
        q.limit(int(m.group("limit")))

    if not q._aggs and plain_cols:
        q.select(*plain_cols)
    return q


def sql(source: Source, statement: str) -> ColumnTable:
    """Execute a single SELECT statement against a table or dataset."""
    return sql_query(source, statement).run()
