"""Query engine over columnar telemetry (paper §IV-C / Lesson 4).

Two interfaces over :class:`~repro.telemetry.columnar.ColumnTable`:

* a fluent builder — ``Query(t).where("rank", "<", 16).group_by("step")
  .agg(("comm_s", "mean"), ("comm_s", "p99")).run()``;
* a small SQL dialect — ``sql(t, "SELECT rank, mean(comm_s) FROM t
  WHERE step >= 100 GROUP BY rank ORDER BY mean_comm_s DESC LIMIT 10")``
  — mirroring how the paper's diagnosis settled on "SQL over telemetry
  grouped by timestep and sorted by rank".

Group-by is vectorized: composite keys via ``np.unique(return_inverse)``
and aggregation via sorted ``reduceat`` — no per-group Python loops, so
million-row tables stay interactive (the low-latency property Lesson 4
calls essential for hypothesis-driven exploration).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

import numpy as np

from .columnar import ColumnTable

__all__ = ["Query", "sql", "AGGREGATES"]


def _agg_quantile(q: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def fn(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
        out = np.empty(starts.shape[0], dtype=np.float64)
        bounds = np.append(starts, sorted_vals.shape[0])
        for i in range(starts.shape[0]):
            out[i] = np.quantile(sorted_vals[bounds[i]:bounds[i + 1]], q)
        return out

    return fn


def _reduceat(op) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def fn(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
        return op.reduceat(sorted_vals, starts)

    return fn


def _agg_mean(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    sums = np.add.reduceat(sorted_vals, starts)
    counts = np.diff(np.append(starts, sorted_vals.shape[0]))
    return sums / counts


def _agg_count(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.diff(np.append(starts, sorted_vals.shape[0])).astype(np.int64)


def _agg_std(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    bounds = np.append(starts, sorted_vals.shape[0])
    counts = np.diff(bounds).astype(np.float64)
    sums = np.add.reduceat(sorted_vals, starts)
    sqsums = np.add.reduceat(sorted_vals.astype(np.float64) ** 2, starts)
    var = np.maximum(sqsums / counts - (sums / counts) ** 2, 0.0)
    return np.sqrt(var)


#: name -> group-aggregation function over (group-sorted values, group starts)
AGGREGATES: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": _reduceat(np.add),
    "min": _reduceat(np.minimum),
    "max": _reduceat(np.maximum),
    "mean": _agg_mean,
    "count": _agg_count,
    "std": _agg_std,
    "p50": _agg_quantile(0.50),
    "p95": _agg_quantile(0.95),
    "p99": _agg_quantile(0.99),
}

_OPS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "==": lambda c, v: c == v,
    "!=": lambda c, v: c != v,
    "<": lambda c, v: c < v,
    "<=": lambda c, v: c <= v,
    ">": lambda c, v: c > v,
    ">=": lambda c, v: c >= v,
}


class Query:
    """Composable filter / group-by / aggregate over a ColumnTable."""

    def __init__(self, table: ColumnTable) -> None:
        self.table = table
        self._mask: np.ndarray | None = None
        self._group: List[str] = []
        self._aggs: List[Tuple[str, str]] = []
        self._order: Tuple[str, bool] | None = None
        self._limit: int | None = None

    def where(self, column: str, op: str, value: float) -> "Query":
        """Add a conjunctive predicate (``column <op> value``)."""
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}; known: {sorted(_OPS)}")
        m = _OPS[op](self.table[column], value)
        self._mask = m if self._mask is None else (self._mask & m)
        return self

    def group_by(self, *columns: str) -> "Query":
        for c in columns:
            _ = self.table[c]  # validate eagerly
        self._group = list(columns)
        return self

    def agg(self, *specs: Tuple[str, str]) -> "Query":
        """Add aggregations as ``(column, func)`` pairs.

        Output columns are named ``{func}_{column}``.
        """
        for col, fn in specs:
            _ = self.table[col]
            if fn not in AGGREGATES:
                raise ValueError(f"unknown aggregate {fn!r}; known: {sorted(AGGREGATES)}")
        self._aggs.extend(specs)
        return self

    def order_by(self, column: str, desc: bool = False) -> "Query":
        self._order = (column, desc)
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValueError("limit must be >= 0")
        self._limit = n
        return self

    # ------------------------------------------------------------------ #

    def run(self) -> ColumnTable:
        """Execute: filter → group/aggregate → order → limit."""
        t = self.table if self._mask is None else self.table.filter(self._mask)

        if self._group or self._aggs:
            t = self._grouped(t)

        if self._order is not None:
            col, desc = self._order
            order = np.argsort(t[col], kind="stable")
            if desc:
                order = order[::-1]
            t = t.filter(order)
        if self._limit is not None:
            t = t.head(self._limit)
        return t

    def _grouped(self, t: ColumnTable) -> ColumnTable:
        if not self._aggs:
            raise ValueError("group_by requires at least one agg()")
        n = t.n_rows
        if self._group:
            keys = np.stack([t[c] for c in self._group], axis=1)
            # Composite key via structured view-free lexsort + unique rows.
            order = np.lexsort(tuple(t[c] for c in reversed(self._group)))
            sorted_keys = keys[order]
            change = np.ones(n, dtype=bool)
            if n > 1:
                change[1:] = np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1)
            starts = np.nonzero(change)[0] if n else np.empty(0, dtype=np.int64)
            out: Dict[str, np.ndarray] = {
                c: sorted_keys[starts, i] for i, c in enumerate(self._group)
            }
        else:
            order = np.arange(n)
            starts = np.zeros(1 if n else 0, dtype=np.int64)
            out = {}
        for col, fn in self._aggs:
            vals = t[col][order].astype(np.float64, copy=False)
            name = f"{fn}_{col}"
            if n:
                out[name] = AGGREGATES[fn](vals, starts)
            else:
                out[name] = np.empty(0, dtype=np.float64)
        return ColumnTable(out)


# ---------------------------------------------------------------------- #
# tiny SQL dialect
# ---------------------------------------------------------------------- #

_SQL_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+FROM\s+\w+"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>.+?))?"
    r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGG_RE = re.compile(r"^(?P<fn>\w+)\(\s*(?P<col>\w+)\s*\)$")
_PRED_RE = re.compile(r"^(?P<col>\w+)\s*(?P<op>==|!=|<=|>=|<|>|=)\s*(?P<val>[-+.\w]+)$")


def sql(table: ColumnTable, statement: str) -> ColumnTable:
    """Execute a single SELECT statement against a table.

    Grammar: ``SELECT item[, ...] FROM <any name> [WHERE pred [AND ...]]
    [GROUP BY col[, ...]] [ORDER BY col [DESC]] [LIMIT n]`` where an item
    is a column name or ``fn(column)`` with ``fn`` in
    :data:`AGGREGATES`, and predicates compare a column to a literal.
    """
    m = _SQL_RE.match(statement)
    if not m:
        raise ValueError(f"cannot parse SQL: {statement!r}")
    q = Query(table)

    if m.group("where"):
        for pred in re.split(r"\s+AND\s+", m.group("where"), flags=re.IGNORECASE):
            pm = _PRED_RE.match(pred.strip())
            if not pm:
                raise ValueError(f"cannot parse predicate {pred!r}")
            op = "==" if pm.group("op") == "=" else pm.group("op")
            q.where(pm.group("col"), op, float(pm.group("val")))

    plain_cols: List[str] = []
    for item in (s.strip() for s in m.group("select").split(",")):
        if item == "*":
            plain_cols.extend(table.names)
            continue
        am = _AGG_RE.match(item)
        if am:
            q.agg((am.group("col"), am.group("fn").lower()))
        else:
            plain_cols.append(item)

    if m.group("group"):
        q.group_by(*[c.strip() for c in m.group("group").split(",")])
    elif q._aggs and plain_cols:
        # e.g. SELECT rank, mean(x) — implicit group by the plain columns
        q.group_by(*plain_cols)

    if m.group("order"):
        spec = m.group("order").strip()
        desc = bool(re.search(r"\s+DESC$", spec, re.IGNORECASE))
        col = re.sub(r"\s+(DESC|ASC)$", "", spec, flags=re.IGNORECASE).strip()
        q.order_by(col, desc=desc)
    if m.group("limit"):
        q.limit(int(m.group("limit")))

    result = q.run()
    if not q._aggs and plain_cols:
        result = result.select(plain_cols)
    return result
