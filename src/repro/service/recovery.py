"""Restart recovery: rebuild a job service from its on-disk store.

On ``repro serve --state DIR`` boot the server replays the
:class:`~repro.service.store.JobStore` into live scheduler state, so a
crash or restart loses no tenant's work:

* **torn records** (CRC failure) are quarantined as ``*.torn`` files
  and reported — never trusted, never silently dropped from the count;
* **terminal records** (done/failed/cancelled/shed) are rehydrated as
  finished jobs: their digests, exit codes, and errors stay queryable
  through ``status``/``result`` (the rendered text is the one thing
  not retained across a restart);
* **submitted/queued records** are re-admitted to the
  :class:`~repro.service.queue.AdmissionQueue` in original submission
  order (the queue's priority rule then re-derives the same dispatch
  order a never-restarted server would have used) — quota checks were
  already paid at the original submit, so re-admission bypasses them;
* **running records** are the crash evidence: the server died mid-job.
  Each one charges a crash against its spec's content hash in the
  poison ledger, then is re-queued with ``resume=True`` so the PR 6
  sweep journal replays every completed cell and the finished job's
  digest is bit-identical to an uninterrupted run.  A spec hash that
  has now crashed the server ``poison_threshold`` times is instead
  **quarantined as failed** — the circuit breaker that keeps one
  poisonous submit from crash-looping the service forever (the serving
  analogue of the supervisor's ``CellFailure`` quarantine).

The module is deliberately server-agnostic: it turns a store into a
:class:`RecoveryPlan`; :class:`~repro.service.server.JobService` applies
the plan to its queue and job table.
"""

from __future__ import annotations

import dataclasses
from typing import List

from .store import TERMINAL_STATES, JobRecord, JobStore

__all__ = ["RecoveryPlan", "recover_jobs", "POISON_ERROR_PREFIX"]

POISON_ERROR_PREFIX = "poison-spec circuit breaker"


@dataclasses.dataclass
class RecoveryPlan:
    """What a booting server must do with each surviving record."""

    #: records to re-admit (original submission order), all with
    #: ``resume`` semantics — an empty journal resumes to a full run
    requeue: List[JobRecord] = dataclasses.field(default_factory=list)
    #: records already terminal: rehydrate as finished jobs
    finished: List[JobRecord] = dataclasses.field(default_factory=list)
    #: running records quarantined by the circuit breaker this boot
    #: (they are also in ``finished``, now in state ``failed``)
    poisoned: List[JobRecord] = dataclasses.field(default_factory=list)
    #: mid-run records being resumed (subset of ``requeue``)
    resumed: List[JobRecord] = dataclasses.field(default_factory=list)
    n_torn: int = 0
    max_seq: int = 0

    def summary_lines(self) -> List[str]:
        lines = [
            f"recovery: {len(self.requeue)} re-queued "
            f"({len(self.resumed)} resuming mid-run journals), "
            f"{len(self.finished)} terminal, "
            f"{len(self.poisoned)} poisoned, {self.n_torn} torn"
        ]
        for rec in self.resumed:
            lines.append(
                f"  resume {rec.job_id} ({rec.kind}, tenant {rec.tenant}, "
                f"crash #{rec.crashes})"
            )
        for rec in self.poisoned:
            lines.append(f"  quarantine {rec.job_id}: {rec.error}")
        return lines


def recover_jobs(store: JobStore, poison_threshold: int = 3) -> RecoveryPlan:
    """Classify every record in ``store`` and persist the verdicts.

    Every state change this function decides (a crashed job re-queued,
    a poisoned job failed) is written back through the store before the
    plan is returned, so a crash *during* recovery just re-runs it.
    """
    records, torn = store.load_all()
    plan = RecoveryPlan(n_torn=len(torn))
    for rec in records:
        plan.max_seq = max(plan.max_seq, rec.seq)
        if rec.state in TERMINAL_STATES:
            plan.finished.append(rec)
            continue
        if rec.state == "running":
            # The server died while this job ran: that is one crash
            # charged against the spec's content hash.
            rec.crashes += 1
            crashes = store.record_crash(rec.spec_hash)
            if crashes >= poison_threshold:
                rec.state = "failed"
                rec.exit_code = 1
                rec.error = (
                    f"{POISON_ERROR_PREFIX}: spec {rec.spec_hash[:12]}… "
                    f"crashed the server {crashes} time(s) "
                    f"(threshold {poison_threshold}); quarantined as failed"
                )
                store.write(rec, force=True)
                plan.finished.append(rec)
                plan.poisoned.append(rec)
                continue
            rec.state = "queued"
            store.write(rec, force=True)
            plan.requeue.append(rec)
            plan.resumed.append(rec)
            continue
        # submitted or queued: never started, nothing to resume — but a
        # journal dir may exist from a pre-crash incarnation, so resume
        # semantics (replay-then-run) are always the safe choice.
        if rec.state == "submitted":
            rec.state = "queued"
        store.write(rec, force=True)
        plan.requeue.append(rec)
    return plan
