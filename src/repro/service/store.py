"""Crash-safe on-disk job store: the service's write-ahead tenant state.

PR 7's ``repro serve`` kept every job — queued backlogs, running
attempts, finished digests — in one in-memory dict, so the server
process was the single point of failure the rest of the stack had
already been hardened against (journaled sweeps survive ``kill -9``;
the serving layer did not).  The :class:`JobStore` closes that gap the
same way the sweep journal (PR 6) and checkpoint store (PR 1/3) do:
one small, atomic, checksummed record per unit of state, committed by
rename, with torn writes detected instead of trusted.

Layout under the store root (the ``repro serve --state DIR`` flag)::

    jobs/job-0001.json     one record per job: spec params, tenant,
                           priority, lifecycle state, journal dir,
                           idempotency key, result digest ...
    jobs/job-0001.json.torn  a record that failed CRC verification,
                           quarantined at recovery (named evidence,
                           never silently resurrected)
    poison.json            spec-hash -> server-crash counts (the
                           poison-spec circuit breaker ledger)

Every record file is ``{"magic", "crc32", "payload"}`` where
``payload`` is the canonical JSON of the record and ``crc32`` covers
its bytes — a truncated or bit-flipped file fails verification and is
treated as torn.  Writes stage to a temp file, fsync, rename into
place, and fsync the directory (the ``DirectoryCheckpointStore``
durability recipe), so the commit point of every state transition is a
single atomic rename.

Lifecycle states are **monotonic** within a server process::

    submitted -> queued -> running -> {done, failed, cancelled, shed}

The store enforces that order on :meth:`write` — a bug that tries to
move a done job back to running fails loudly instead of corrupting
tenant history.  Recovery (:mod:`repro.service.recovery`) is the one
legal exception: a job found mid-``running`` after a crash is re-queued
with ``force=True`` and its crash count incremented.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..telemetry.columnar import fsync_dir

__all__ = [
    "JobRecord",
    "JobStore",
    "StoreError",
    "TERMINAL_STATES",
    "STATE_ORDER",
    "spec_hash",
]

_MAGIC = "RPJB01"

#: lifecycle rank: transitions may never decrease, and terminal states
#: (rank 3) admit no further transition at all
STATE_ORDER: Dict[str, int] = {
    "submitted": 0,
    "queued": 1,
    "running": 2,
    "done": 3,
    "failed": 3,
    "cancelled": 3,
    "shed": 3,
}

TERMINAL_STATES = frozenset(s for s, r in STATE_ORDER.items() if r == 3)


class StoreError(RuntimeError):
    """An illegal store operation (non-monotonic transition, bad state)."""


def spec_hash(kind: str, params: Dict) -> str:
    """Content hash of a submitted spec: the circuit-breaker identity.

    Canonical JSON over (kind, params) so two submits of the same
    experiment — whatever their tenant, priority, or key — share one
    crash history.
    """
    doc = json.dumps({"kind": kind, "params": params}, sort_keys=True,
                     separators=(",", ":"), default=str)
    return hashlib.sha256(doc.encode()).hexdigest()


@dataclasses.dataclass
class JobRecord:
    """One job's durable state (everything recovery needs to rebuild it).

    ``params`` is the raw JSON params dict from the submit request —
    the spec is *rebuilt* from it at recovery through the same
    :func:`~repro.service.spec.spec_from_params` path a live submit
    uses, so a recovered job can never drift from what was asked.
    """

    job_id: str
    seq: int                      #: submission order (restores the id counter)
    kind: str
    params: Dict
    tenant: str
    priority: int
    jobs: int
    state: str
    journal_dir: str
    spec_hash: str
    idempotency_key: Optional[str] = None
    deadline_s: Optional[float] = None
    resume_of: Optional[str] = None
    #: times a server died while this record was mid-``running``
    crashes: int = 0
    #: terminal-state result facts (the renderable text is not retained
    #: across restarts; digests and codes are)
    digest: Optional[str] = None
    exit_code: Optional[int] = None
    error: Optional[str] = None
    cancelled: bool = False

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: Dict) -> "JobRecord":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in fields})


def _write_checksummed(path: Path, payload: str) -> None:
    """Atomic, fsync'd write of one CRC-framed JSON document."""
    doc = {
        "magic": _MAGIC,
        "crc32": zlib.crc32(payload.encode()),
        "payload": payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(doc, fh)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    fsync_dir(path.parent)


def _read_checksummed(path: Path) -> Optional[Dict]:
    """The verified payload of one record, or ``None`` if torn."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if (
        not isinstance(doc, dict)
        or doc.get("magic") != _MAGIC
        or not isinstance(doc.get("payload"), str)
        or zlib.crc32(doc["payload"].encode()) != doc.get("crc32")
    ):
        return None
    try:
        payload = json.loads(doc["payload"])
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class JobStore:
    """Write-through store of :class:`JobRecord` files for one service.

    All methods are synchronous filesystem work; the server calls them
    from its event loop (records are small — a transition is one
    staged write + rename).  The store keeps an in-process view of each
    job's last written state to enforce monotonicity; recovery uses
    ``force=True`` to re-queue crashed jobs across that rule.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._poison_path = self.root / "poison.json"
        self._states: Dict[str, str] = {}
        self._poison: Dict[str, int] = self._load_poison()

    # ------------------------------------------------------------------ #
    # job records
    # ------------------------------------------------------------------ #

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def write(self, record: JobRecord, force: bool = False) -> None:
        """Persist one record, enforcing monotonic lifecycle order.

        ``force`` is the recovery/drain escape hatch: it may move a
        ``running`` record back to ``queued`` (the server died or
        drained mid-run and the job will resume through its journal).
        """
        if record.state not in STATE_ORDER:
            raise StoreError(f"unknown job state {record.state!r}")
        previous = self._states.get(record.job_id)
        if previous is not None and not force:
            if previous in TERMINAL_STATES and record.state != previous:
                raise StoreError(
                    f"{record.job_id}: illegal transition "
                    f"{previous} -> {record.state} (terminal)"
                )
            if STATE_ORDER[record.state] < STATE_ORDER[previous]:
                raise StoreError(
                    f"{record.job_id}: illegal transition "
                    f"{previous} -> {record.state} (non-monotonic)"
                )
        payload = json.dumps(record.to_json(), sort_keys=True, default=str)
        _write_checksummed(self._record_path(record.job_id), payload)
        self._states[record.job_id] = record.state

    def delete(self, job_id: str) -> None:
        """Remove a record (a submit that admission control rejected)."""
        self._record_path(job_id).unlink(missing_ok=True)
        self._states.pop(job_id, None)
        fsync_dir(self.jobs_dir)

    def load(self, job_id: str) -> Optional[JobRecord]:
        payload = _read_checksummed(self._record_path(job_id))
        return None if payload is None else JobRecord.from_json(payload)

    def load_all(self) -> Tuple[List[JobRecord], List[Path]]:
        """Every verifiable record (by submission order) + torn files.

        Torn records — truncated, bit-flipped, or otherwise failing
        CRC — are renamed to ``*.torn`` so they are quarantined as
        evidence rather than rescanned (or worse, trusted) on the next
        boot.
        """
        records: List[JobRecord] = []
        torn: List[Path] = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            payload = _read_checksummed(path)
            if payload is None:
                quarantined = path.with_name(path.name + ".torn")
                path.replace(quarantined)
                torn.append(quarantined)
                continue
            records.append(JobRecord.from_json(payload))
        if torn:
            fsync_dir(self.jobs_dir)
        records.sort(key=lambda r: r.seq)
        for r in records:
            self._states[r.job_id] = r.state
        return records, torn

    def max_seq(self) -> int:
        """Highest seq among committed records (id-counter restoration)."""
        best = 0
        for path in self.jobs_dir.glob("job-*.json"):
            payload = _read_checksummed(path)
            if payload is not None:
                best = max(best, int(payload.get("seq", 0)))
        return best

    def flush(self) -> None:
        """fsync the record directory (the drain-shutdown final barrier)."""
        fsync_dir(self.jobs_dir)
        fsync_dir(self.root)

    # ------------------------------------------------------------------ #
    # poison-spec circuit breaker ledger
    # ------------------------------------------------------------------ #

    def _load_poison(self) -> Dict[str, int]:
        payload = _read_checksummed(self._poison_path)
        if payload is None:
            return {}
        return {
            str(k): int(v) for k, v in payload.items()
            if isinstance(v, (int, float))
        }

    def _save_poison(self) -> None:
        _write_checksummed(self._poison_path, json.dumps(
            self._poison, sort_keys=True
        ))

    def record_crash(self, shash: str) -> int:
        """Count one server crash against a spec hash; returns the total."""
        self._poison[shash] = self._poison.get(shash, 0) + 1
        self._save_poison()
        return self._poison[shash]

    def clear_poison(self, shash: str) -> None:
        """A clean completion closes the breaker for this spec hash."""
        if self._poison.pop(shash, None) is not None:
            self._save_poison()

    def crash_count(self, shash: str) -> int:
        return self._poison.get(shash, 0)

    def is_poisoned(self, shash: str, threshold: int) -> bool:
        """True once a spec hash has crashed the server ``threshold`` times."""
        return self.crash_count(shash) >= threshold
