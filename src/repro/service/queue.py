"""Admission-controlled priority queue with per-tenant quotas.

The scheduling policy, in decision order:

1. **Admission** (at submit): a tenant may hold at most
   ``max_queued_per_tenant`` queued jobs, and the queue overall at most
   ``max_queued``; beyond either, submit fails with
   :class:`QuotaExceeded` (the service replies with an error instead of
   buffering unboundedly).
2. **Eligibility** (at dispatch): a tenant with
   ``max_active_per_tenant`` running jobs contributes no candidates —
   one tenant's burst cannot occupy every slot while another waits.
3. **Ordering** among eligible jobs: highest ``priority`` first; ties
   go to the tenant with *fewer running jobs* (fairness under equal
   priority), then to submission order (FIFO).

The queue is plain single-threaded state; the asyncio server is its
only caller, always from the event loop.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

__all__ = ["AdmissionQueue", "QueuedJob", "QuotaExceeded", "QuotaConfig"]


class QuotaExceeded(RuntimeError):
    """Submit rejected by admission control (tenant or global quota)."""


@dataclasses.dataclass(frozen=True)
class QuotaConfig:
    """Admission and fairness limits of one service instance."""

    max_active: int = 2                #: concurrent running jobs, all tenants
    max_active_per_tenant: int = 1
    max_queued: int = 64
    max_queued_per_tenant: int = 8

    def __post_init__(self) -> None:
        for name in (
            "max_active", "max_active_per_tenant",
            "max_queued", "max_queued_per_tenant",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclasses.dataclass
class QueuedJob:
    """One queue entry (the server's job record rides in ``payload``)."""

    job_id: str
    tenant: str
    priority: int = 0
    payload: object = None


class AdmissionQueue:
    """Priority + fairness scheduling over per-tenant quotas."""

    def __init__(self, quotas: Optional[QuotaConfig] = None) -> None:
        self.quotas = quotas or QuotaConfig()
        #: submission order; dispatch scans it (quota-bounded, so small)
        self._queued: List[QueuedJob] = []
        self._active: Dict[str, int] = {}      #: tenant → running count

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._queued)

    def queued_for(self, tenant: str) -> int:
        return sum(1 for j in self._queued if j.tenant == tenant)

    def active_for(self, tenant: str) -> int:
        return self._active.get(tenant, 0)

    @property
    def n_active(self) -> int:
        return sum(self._active.values())

    # ------------------------------------------------------------------ #

    def submit(self, job: QueuedJob) -> None:
        """Admit one job, or raise :class:`QuotaExceeded`."""
        q = self.quotas
        if len(self._queued) >= q.max_queued:
            raise QuotaExceeded(
                f"queue full ({q.max_queued} jobs); retry later"
            )
        if self.queued_for(job.tenant) >= q.max_queued_per_tenant:
            raise QuotaExceeded(
                f"tenant {job.tenant!r} already has "
                f"{q.max_queued_per_tenant} queued job(s)"
            )
        self._queued.append(job)

    def readmit(self, job: QueuedJob) -> None:
        """Re-admit a recovered job, bypassing admission quotas.

        Restart recovery replays jobs that already paid their quota
        checks at the original submit; bouncing them now would lose
        surviving work.  Callers must readmit in original submission
        order — dispatch then re-derives the same priority/fairness
        order a never-restarted server would have used.
        """
        self._queued.append(job)

    def remove(self, job_id: str) -> Optional[QueuedJob]:
        """Withdraw a queued job (cancel before it ever ran)."""
        for i, job in enumerate(self._queued):
            if job.job_id == job_id:
                return self._queued.pop(i)
        return None

    def shed_lowest(self, below_priority: int) -> Optional[QueuedJob]:
        """Evict the least-worthy queued job to make room, or ``None``.

        Overload shedding on a full queue: the victim is the lowest
        priority strictly below ``below_priority``; among equals, the
        most recently submitted (oldest work has waited longest and is
        kept).  ``None`` means the arriving job outranks nothing — the
        caller sheds *it* with a structured overload response instead.
        """
        victim_index = None
        victim_key = None
        for i, job in enumerate(self._queued):
            if job.priority >= below_priority:
                continue
            key = (job.priority, -i)
            if victim_key is None or key < victim_key:
                victim_key, victim_index = key, i
        if victim_index is None:
            return None
        return self._queued.pop(victim_index)

    def next_job(self) -> Optional[QueuedJob]:
        """Dispatch decision: the next job to run, or ``None``.

        ``None`` means either no free slot (global ``max_active``) or no
        *eligible* job — every queued tenant is at its active quota.
        The caller must follow up with :meth:`mark_started`.
        """
        q = self.quotas
        if self.n_active >= q.max_active:
            return None
        best_key = None
        best_index = None
        for i, job in enumerate(self._queued):
            if self.active_for(job.tenant) >= q.max_active_per_tenant:
                continue
            key = (-job.priority, self.active_for(job.tenant), i)
            if best_key is None or key < best_key:
                best_key, best_index = key, i
        if best_index is None:
            return None
        return self._queued.pop(best_index)

    def mark_started(self, tenant: str) -> None:
        self._active[tenant] = self._active.get(tenant, 0) + 1

    def mark_finished(self, tenant: str) -> None:
        n = self._active.get(tenant, 0) - 1
        if n <= 0:
            self._active.pop(tenant, None)
        else:
            self._active[tenant] = n
