"""One renderer for experiment results, shared by CLI and service.

Historically each CLI subcommand printed its own report block and its
own ``result digest:`` line, and the supervised-executor summary lived
in a private ``_print_supervised`` helper.  The service needs the same
text as a *value* (job results travel over a socket), so the rendering
moved here: every function returns a list of line elements such that

    for line in elements: print(line)

and

    sys.stdout.write("\\n".join(elements) + "\\n")

produce identical bytes.  The CLI does the former, the service stores
the latter — the parity tests in ``tests/test_cli_parity.py`` pin both
against frozen copies of the pre-refactor subcommand bodies.
"""

from __future__ import annotations

from typing import List, Optional

from ..perf.supervisor import SupervisedReport

__all__ = [
    "digest_line",
    "render_resilience",
    "render_scalebench",
    "render_sedov",
    "render_text",
    "supervised_lines",
]


def render_text(elements: List[str]) -> str:
    """The exact bytes ``print``-ing each element would produce."""
    if not elements:
        return ""
    return "\n".join(elements) + "\n"


def digest_line(digest: str) -> str:
    return f"result digest: {digest}"


def supervised_lines(report: SupervisedReport) -> List[str]:
    """Executor summary block shared by the sweep subcommands."""
    lines = ["", report.summary_line()]
    for f in report.failures:
        lines.append(
            f"QUARANTINED cell {f.index} "
            f"({f.kind} after {f.attempts} attempt(s)): {f.error} "
            f"[item={f.item_repr}]"
        )
    if report.journal_path is not None:
        lines.append(
            f"journal: {report.journal_path} "
            f"(events queryable: repro query {report.journal_path}/telemetry "
            f'"SELECT kind, count(cell) FROM events GROUP BY kind")'
        )
    return lines


def render_sedov(result, show_transport: bool, profile: bool) -> List[str]:
    """The ``repro sedov`` report (Fig. 6 tables, Table I, extras)."""
    lines = [
        result.table_i_text(),
        "",
        result.fig6a_table(),
        "",
        result.fig6b_table(),
        "",
        result.fig6c_table(),
    ]
    for scale in result.scales():
        best = result.best_label(scale)
        lines.append(
            f"\n{scale} ranks: best {best} "
            f"({result.reduction_vs_baseline(scale, best):.1%} vs baseline)"
        )
    if show_transport:
        lines.append("\ntransport (unreliable fabric):")
        for o in result.outcomes:
            s = o.summary
            lines.append(
                f"  {o.scale} ranks · {o.policy_label:<10} "
                f"retrans={s.n_retransmits} drops={s.n_transport_drops} "
                f"rollback={s.n_rollbacks} degraded={s.n_degraded_epochs} "
                f"stall={s.transport_stall_s:.3f}s"
            )
    if profile:
        for o in result.outcomes:
            lines.append(f"\n[{o.scale} ranks · {o.policy_label}]")
            lines.append(o.profile.report())
    if result.executor is not None:
        lines.extend(supervised_lines(result.executor))
        lines.append(digest_line(result.digest()))
    return lines


def render_scalebench(
    rows,
    executor: Optional[SupervisedReport],
    node_classes: Optional[str] = None,
) -> List[str]:
    """The ``repro scalebench`` report (always digest-terminated).

    ``node_classes`` adds the U-curve-under-heterogeneity section;
    ``None`` (homogeneous sweeps) renders byte-identically to before.
    """
    from ..bench import makespan_table, overhead_table, scalebench_digest

    lines = [makespan_table(rows), "", overhead_table(rows)]
    if node_classes is not None:
        from ..bench import hetero_ucurve_table

        lines.extend(["", hetero_ucurve_table(rows, node_classes)])
    if executor is not None:
        lines.extend(supervised_lines(executor))
    lines.append(digest_line(scalebench_digest(rows)))
    return lines


def render_resilience(result) -> List[str]:
    """The ``repro resilience`` three-arm report."""
    lines = [result.report()]
    if result.profiles:
        for arm, profiler in result.profiles.items():
            lines.append(f"\n[{arm}]")
            lines.append(profiler.report())
    return lines
