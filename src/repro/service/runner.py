"""Execute a :class:`~repro.service.spec.JobSpec` through the
supervised pool, producing a transportable :class:`JobResult`.

The runner is the single execution path behind both front ends:

* the CLI hands it a spec built from argparse flags and prints
  ``result.text`` (byte-identical to the pre-service subcommands);
* the server hands it a spec built from a JSON ``submit`` request,
  instrumented with a cancel flag, a per-job journal, live event
  spooling, and the shared pattern cache.

A cancelled job is not an error here: :class:`~repro.perf.cancel.
JobCancelled` is converted into a ``cancelled=True`` result carrying
the partial supervision report, and the journal it leaves behind is
resumable (``resume_of`` on a later submit, or ``--resume`` on the
CLI) to a bit-identical completion.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..perf.cancel import DeadlineExceeded, JobCancelled
from .render import render_text, supervised_lines
from .spec import REGISTRY, JobOutcome, JobSpec

__all__ = ["JobResult", "JobRunner"]

#: exit code of a cancelled job (the 128 + SIGINT convention)
CANCELLED_EXIT_CODE = 130

#: exit code of a job stopped by its deadline (the timeout(1) convention)
DEADLINE_EXIT_CODE = 124


@dataclasses.dataclass
class JobResult:
    """Everything a front end needs from one executed spec."""

    kind: str
    tenant: str
    text: str                        #: the full CLI-equivalent report
    exit_code: int
    digest: Optional[str] = None
    cancelled: bool = False
    #: the cancellation was the job's own ``deadline_s`` clock firing
    deadline_exceeded: bool = False
    #: executor counters (n_executed, n_retries, n_quarantined, ...)
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)
    journal_path: Optional[str] = None
    #: this job's pattern-cache counters, summed over its engine runs
    pattern_cache: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: this job's trajectory-cache warm-start probe (sedov only)
    traj_cache: Dict[str, int] = dataclasses.field(default_factory=dict)

    def to_wire(self) -> Dict:
        """A JSON-safe dict (the ``result`` verb's payload)."""
        return {
            "kind": self.kind,
            "tenant": self.tenant,
            "text": self.text,
            "exit_code": self.exit_code,
            "digest": self.digest,
            "cancelled": self.cancelled,
            "deadline_exceeded": self.deadline_exceeded,
            "counters": dict(self.counters),
            "journal_path": self.journal_path,
            "pattern_cache": dict(self.pattern_cache),
            "traj_cache": dict(self.traj_cache),
        }


def _probe_traj_cache(spec: JobSpec) -> Dict[str, int]:
    """Warm-start attribution: which of this sedov job's trajectories
    already sit in the shared on-disk cache (per-tenant hit counters in
    job status come from summing these)."""
    if spec.kind != "sedov":
        return {}
    from ..perf.trajcache import trajectory_cache_path

    hits = misses = 0
    for scale in spec.config.scales:
        try:
            path = trajectory_cache_path(spec.config.sedov_config(scale))
        except Exception:
            # Bad scale/config: let the experiment itself raise the
            # real error from its own entry point.
            return {}
        if path is None:
            return {}
        if path.exists():
            hits += 1
        else:
            misses += 1
    return {"hits": hits, "misses": misses}


def _pattern_counters(outcome: JobOutcome) -> Dict[str, int]:
    totals = {"hits": 0, "misses": 0, "evictions": 0}
    for s in outcome.summaries:
        totals["hits"] += s.pattern_cache_hits
        totals["misses"] += s.pattern_cache_misses
        totals["evictions"] += s.pattern_cache_evictions
    return totals


class JobRunner:
    """Runs specs; optionally instruments them with service plumbing.

    Parameters
    ----------
    cancel_path:
        Flag file for cooperative cancellation.  Threaded into the
        supervisor config *and* each engine run's DriverConfig, so a
        cancel reaches between-cell scheduling and in-cell epoch
        boundaries alike.  ``None`` (the CLI path) leaves the spec
        untouched — keys, digests, and output stay bit-identical to the
        pre-service subcommands.
    shared_pattern_cache:
        Route engine pattern lookups through the process-wide
        content-keyed store (multi-tenant mode).
    deadline_ts:
        Absolute wall-clock deadline (``time.time()`` epoch seconds).
        Threaded next to the cancel flag — the supervisor checks it
        between cells, the engine's CancellationHook at epoch
        boundaries — so an overrunning job stops cooperatively and
        leaves a resumable journal, exactly like a cancel, but reported
        as :class:`~repro.perf.cancel.DeadlineExceeded`.
    """

    def __init__(
        self,
        cancel_path: Optional[str] = None,
        shared_pattern_cache: bool = False,
        deadline_ts: Optional[float] = None,
    ) -> None:
        self.cancel_path = cancel_path
        self.shared_pattern_cache = shared_pattern_cache
        self.deadline_ts = deadline_ts

    # ------------------------------------------------------------------ #

    def _instrument(self, spec: JobSpec) -> JobSpec:
        if (
            self.cancel_path is None
            and not self.shared_pattern_cache
            and self.deadline_ts is None
        ):
            return spec
        kind = REGISTRY[spec.kind]
        config = kind.instrument(
            spec.config, self.cancel_path, self.shared_pattern_cache,
            self.deadline_ts,
        )
        supervise = spec.supervise
        if supervise is not None:
            updates = {}
            if self.cancel_path is not None:
                updates["cancel_path"] = self.cancel_path
            if self.deadline_ts is not None:
                updates["deadline_ts"] = self.deadline_ts
            if updates:
                supervise = dataclasses.replace(supervise, **updates)
        return dataclasses.replace(spec, config=config, supervise=supervise)

    def run(
        self,
        spec: JobSpec,
        on_event: Optional[Callable] = None,
    ) -> JobResult:
        """Execute ``spec``; never raises :class:`JobCancelled`.

        Experiment errors (bad policy name, quarantined resilience arm,
        ...) propagate to the caller — the CLI lets them traceback as it
        always has, the server converts them to failed-job records.
        """
        if spec.kind not in REGISTRY:
            raise ValueError(f"unknown experiment kind {spec.kind!r}")
        kind = REGISTRY[spec.kind]
        traj = _probe_traj_cache(spec)
        run_spec = self._instrument(spec)
        try:
            outcome = kind.execute(run_spec, on_event)
        except JobCancelled as exc:
            return self._cancelled_result(spec, exc, traj)
        lines = kind.render(run_spec, outcome)
        report = outcome.executor
        return JobResult(
            kind=spec.kind,
            tenant=spec.tenant,
            text=render_text(lines),
            exit_code=kind.exit_code(outcome),
            digest=kind.digest(outcome),
            counters=dict(report.counters) if report is not None else {},
            journal_path=(
                str(report.journal_path)
                if report is not None and report.journal_path is not None
                else None
            ),
            pattern_cache=_pattern_counters(outcome),
            traj_cache=traj,
        )

    # ------------------------------------------------------------------ #

    def _cancelled_result(
        self, spec: JobSpec, exc: JobCancelled, traj: Dict[str, int]
    ) -> JobResult:
        deadline = isinstance(exc, DeadlineExceeded)
        report = getattr(exc, "report", None)
        label = "deadline exceeded" if deadline else "cancelled"
        lines: List[str] = [f"{label}: {exc}"]
        counters: Dict[str, int] = {}
        journal_path = None
        if report is not None:
            lines.extend(supervised_lines(report))
            counters = dict(report.counters)
            if report.journal_path is not None:
                journal_path = str(report.journal_path)
        return JobResult(
            kind=spec.kind,
            tenant=spec.tenant,
            text=render_text(lines),
            exit_code=DEADLINE_EXIT_CODE if deadline else CANCELLED_EXIT_CODE,
            cancelled=True,
            deadline_exceeded=deadline,
            counters=counters,
            journal_path=journal_path,
            traj_cache=traj,
        )
