"""Serializable job specifications and the experiment registry.

A :class:`JobSpec` is the tenant-agnostic description of one experiment
run — *what* to execute (an experiment kind plus its frozen config
dataclass), *who* asked (tenant), and *how urgently* (priority) — with
none of the plumbing that executes it.  Both front ends build specs:

* the CLI subcommands (``repro sedov`` / ``scalebench`` /
  ``resilience``) translate argparse flags into a spec and hand it to a
  :class:`~repro.service.runner.JobRunner` in-process;
* the job service (``repro serve``) builds specs from JSON ``submit``
  requests via :func:`spec_from_params` and schedules them through its
  admission queue.

The :data:`REGISTRY` maps each kind to its existing experiment entry
point, its renderer (byte-identical to the historical CLI output — see
:mod:`repro.service.render`), its result digest, and its exit-code
rule.  Adding an experiment to the service is one registry entry; the
queue, quota, cancellation, and query machinery are kind-agnostic.

Specs are plain frozen dataclasses of frozen dataclasses: picklable
(they cross process boundaries inside the supervised pool) and stable
under ``repr`` (their reprs feed sweep/journal keys, which is why every
execution-plumbing knob lives *outside* the config or is excluded from
its repr).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..perf.supervisor import SupervisedReport, SupervisorConfig

__all__ = [
    "ExperimentKind",
    "JobOutcome",
    "JobSpec",
    "REGISTRY",
    "spec_from_params",
]


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One experiment run, described without execution plumbing.

    ``config`` is the experiment's own frozen config dataclass
    (:class:`~repro.bench.sedov_experiment.SedovSweepConfig`,
    :class:`~repro.bench.scalebench.ScalebenchConfig`, or
    :class:`~repro.resilience.experiment.ResilienceExperimentConfig`).
    ``supervise`` is the supervised-executor config, or ``None`` for the
    historical bare execution path (the CLI default with no supervisor
    flag).  ``show_transport`` preserves one CLI rendering quirk: the
    sedov transport block prints whenever ``--transport-faults`` was
    given, even a spec equal to the reliable default.
    """

    kind: str                               #: a :data:`REGISTRY` key
    config: object
    tenant: str = "default"
    priority: int = 0                       #: higher = scheduled first
    jobs: int = 1                           #: worker processes (0 = n_cpu)
    supervise: Optional[SupervisorConfig] = None
    show_transport: bool = False


@dataclasses.dataclass
class JobOutcome:
    """What one executed spec produced (kind-specific ``result``)."""

    result: object
    executor: Optional[SupervisedReport] = None
    #: engine RunSummary objects, for cache-counter aggregation
    summaries: Tuple = ()


@dataclasses.dataclass(frozen=True)
class ExperimentKind:
    """One registry entry: spec → config → execution → rendering."""

    name: str
    build_config: Callable[[Mapping], object]
    execute: Callable[[JobSpec, Optional[Callable]], JobOutcome]
    render: Callable[[JobSpec, JobOutcome], List[str]]
    digest: Callable[[JobOutcome], Optional[str]]
    exit_code: Callable[[JobOutcome], int]
    #: attach service plumbing (cancel flag, shared pattern cache,
    #: wall-clock deadline) to a spec's config without changing its
    #: repr/keys
    instrument: Callable[[object, Optional[str], bool, Optional[float]], object]


# ---------------------------------------------------------------------- #
# sedov
# ---------------------------------------------------------------------- #


def _parse_transport(spec: Optional[str]):
    from ..simnet.faults import NO_TRANSPORT_FAULTS, parse_transport_spec

    return NO_TRANSPORT_FAULTS if spec is None else parse_transport_spec(spec)


def _sedov_config(params: Mapping):
    from ..bench import SedovSweepConfig
    from ..engine.types import DriverConfig

    return SedovSweepConfig(
        scales=tuple(params.get("scales", (512,))),
        policies=tuple(
            params.get(
                "policies",
                ("baseline", "cplx:0", "cplx:25", "cplx:50",
                 "cplx:75", "cplx:100"),
            )
        ),
        steps=int(params.get("steps", 1500)),
        paper_scale=bool(params.get("paper_scale", False)),
        profile=bool(params.get("profile", False)),
        node_classes=params.get("node_classes"),
        driver=DriverConfig(
            transport=_parse_transport(params.get("transport_faults"))
        ),
    )


def _sedov_execute(spec: JobSpec, on_event) -> JobOutcome:
    from ..bench import run_sedov_sweep

    result = run_sedov_sweep(
        spec.config, jobs=spec.jobs, supervise=spec.supervise,
        on_event=on_event,
    )
    return JobOutcome(
        result=result,
        executor=result.executor,
        summaries=tuple(o.summary for o in result.outcomes),
    )


def _sedov_render(spec: JobSpec, outcome: JobOutcome) -> List[str]:
    from .render import render_sedov

    return render_sedov(
        outcome.result,
        show_transport=spec.show_transport,
        profile=spec.config.profile,
    )


def _sedov_instrument(config, cancel_path, shared_cache, deadline_ts=None):
    driver = dataclasses.replace(
        config.driver,
        cancel_path=cancel_path,
        pattern_cache_shared=shared_cache,
        deadline_ts=deadline_ts,
    )
    return dataclasses.replace(config, driver=driver)


# ---------------------------------------------------------------------- #
# scalebench
# ---------------------------------------------------------------------- #


def _scalebench_config(params: Mapping):
    from ..bench import ScalebenchConfig

    return ScalebenchConfig(
        scales=tuple(params.get("scales", (512, 2048, 8192))),
        repeats=int(params.get("repeats", 3)),
        distributions=tuple(
            params.get("distributions",
                       ("exponential", "gaussian", "power-law"))
        ),
        x_values=tuple(
            float(x) for x in params.get("x_values", (0.0, 25.0, 50.0, 75.0, 100.0))
        ),
        shard_ranks=int(params.get("shard_ranks", 0)),
        node_classes=params.get("node_classes"),
    )


def _scalebench_execute(spec: JobSpec, on_event) -> JobOutcome:
    from ..bench import run_scalebench, run_scalebench_supervised

    if spec.supervise is not None:
        result = run_scalebench_supervised(
            spec.config, jobs=spec.jobs, supervise=spec.supervise,
            on_event=on_event,
        )
        return JobOutcome(result=result.rows, executor=result.executor)
    return JobOutcome(result=run_scalebench(spec.config, jobs=spec.jobs))


def _scalebench_render(spec: JobSpec, outcome: JobOutcome) -> List[str]:
    from .render import render_scalebench

    return render_scalebench(
        outcome.result,
        outcome.executor,
        node_classes=getattr(spec.config, "node_classes", None),
    )


def _scalebench_digest(outcome: JobOutcome) -> str:
    from ..bench import scalebench_digest

    return scalebench_digest(outcome.result)


def _scalebench_instrument(config, cancel_path, shared_cache, deadline_ts=None):
    # No epoch engine under scalebench cells: mid-cell cancellation, the
    # shared pattern cache, and in-cell deadline checks don't apply
    # (cells are sub-second; the supervisor-level cancel/deadline
    # between cells is the effective one).
    return config


# ---------------------------------------------------------------------- #
# resilience
# ---------------------------------------------------------------------- #


def _resilience_config(params: Mapping):
    from ..resilience.experiment import ResilienceExperimentConfig

    def step(value):
        if value is None:
            return None
        value = int(value)
        return None if value < 0 else value

    return ResilienceExperimentConfig(
        n_ranks=int(params.get("ranks", 256)),
        steps=int(params.get("steps", 400)),
        policy=str(params.get("policy", "lpt")),
        seed=int(params.get("seed", 3)),
        crash_step=step(params.get("crash_step", 90)),
        crash_node=int(params.get("crash_node", 3)),
        throttle_step=step(params.get("throttle_step", 120)),
        throttle_nodes=tuple(params.get("throttle_nodes", (5,))),
        throttle_factor=params.get("throttle_factor", 8.0),
        transport=_parse_transport(params.get("transport_faults")),
        checkpoint_interval_epochs=int(params.get("checkpoint_interval", 2)),
        check_determinism=bool(params.get("check_determinism", True)),
        profile=bool(params.get("profile", False)),
    )


def _resilience_execute(spec: JobSpec, on_event) -> JobOutcome:
    from ..resilience.experiment import run_resilience_experiment

    result = run_resilience_experiment(
        spec.config, jobs=spec.jobs, supervise=spec.supervise,
        on_event=on_event,
    )
    return JobOutcome(
        result=result,
        summaries=(result.healthy, result.unmitigated, result.resilient),
    )


def _resilience_render(spec: JobSpec, outcome: JobOutcome) -> List[str]:
    from .render import render_resilience

    return render_resilience(outcome.result)


def _resilience_digest(outcome: JobOutcome) -> str:
    import hashlib

    return hashlib.sha256(outcome.result.report().encode()).hexdigest()


def _resilience_exit_code(outcome: JobOutcome) -> int:
    return 0 if outcome.result.deterministic in (True, None) else 1


def _resilience_instrument(config, cancel_path, shared_cache, deadline_ts=None):
    # Deadlines for resilience arms are enforced between cells by the
    # supervisor; the arms themselves are short, fixed-length runs.
    return dataclasses.replace(config, cancel_path=cancel_path)


# ---------------------------------------------------------------------- #


def _sedov_digest(outcome: JobOutcome) -> str:
    return outcome.result.digest()


REGISTRY: Dict[str, ExperimentKind] = {
    "sedov": ExperimentKind(
        name="sedov",
        build_config=_sedov_config,
        execute=_sedov_execute,
        render=_sedov_render,
        digest=_sedov_digest,
        exit_code=lambda outcome: 0,
        instrument=_sedov_instrument,
    ),
    "scalebench": ExperimentKind(
        name="scalebench",
        build_config=_scalebench_config,
        execute=_scalebench_execute,
        render=_scalebench_render,
        digest=_scalebench_digest,
        exit_code=lambda outcome: 0,
        instrument=_scalebench_instrument,
    ),
    "resilience": ExperimentKind(
        name="resilience",
        build_config=_resilience_config,
        execute=_resilience_execute,
        render=_resilience_render,
        digest=_resilience_digest,
        exit_code=_resilience_exit_code,
        instrument=_resilience_instrument,
    ),
}


def spec_from_params(
    kind: str,
    params: Optional[Mapping] = None,
    tenant: str = "default",
    priority: int = 0,
    jobs: int = 1,
    supervise: Optional[SupervisorConfig] = None,
) -> JobSpec:
    """Build a :class:`JobSpec` from plain-JSON parameters (the wire
    path: ``submit`` requests carry ``kind`` + ``params``)."""
    if kind not in REGISTRY:
        raise ValueError(
            f"unknown experiment kind {kind!r} "
            f"(known: {', '.join(sorted(REGISTRY))})"
        )
    params = dict(params or {})
    config = REGISTRY[kind].build_config(params)
    return JobSpec(
        kind=kind,
        config=config,
        tenant=tenant,
        priority=priority,
        jobs=jobs,
        supervise=supervise,
        show_transport=params.get("transport_faults") is not None,
    )
