"""``repro serve`` — the multi-tenant placement job service.

A line-delimited-JSON protocol over a local TCP socket: each request is
one JSON object on one line, each response one JSON object on one line.
Verbs (see ``docs/service.md`` for the full protocol):

* ``submit``  — queue an experiment: ``{"op": "submit", "kind":
  "sedov", "params": {...}, "tenant": "alice", "priority": 5}``.
  Admission control enforces per-tenant queue quotas; ``resume_of``
  continues a cancelled/interrupted job's journal bit-identically.
* ``status``  — one job's state + progress, or a tenant's aggregate
  (active/queued counts, pooled cache hit counters).
* ``events``  — incremental executor-event stream (``since`` cursor).
* ``query``   — run plan-engine SQL against a *running* job's spooled
  telemetry partitions (live snapshot semantics: committed partitions
  only, torn files skipped).
* ``cancel``  — cooperative cancellation: queued jobs are withdrawn;
  running jobs get their cancel flag set and stop at the next epoch
  boundary, leaving a resumable journal.
* ``result``  — the finished job's rendered report text, digest, and
  exit code (``wait: true`` blocks until completion).
* ``ping`` / ``shutdown`` — liveness and orderly stop.

Execution: jobs run in a thread pool (each job may itself fan out a
supervised *process* pool per its ``jobs`` parameter); every job gets a
private journal under the service root, a cancel flag file, live event
spooling, and the process-wide shared pattern cache.  Tenants share
the on-disk trajectory cache, LRU-pruned after every job.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from ..perf.supervisor import SupervisorConfig
from .queue import AdmissionQueue, QueuedJob, QuotaConfig, QuotaExceeded
from .runner import JobResult, JobRunner
from .spec import REGISTRY, JobSpec, spec_from_params

__all__ = ["JobService", "ServiceConfig", "serve"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """One service instance's knobs (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0                      #: 0 = ephemeral (printed at start)
    journal_root: str = ".repro-service"
    quotas: QuotaConfig = QuotaConfig()
    #: shared on-disk trajectory cache for every tenant (None = off)
    traj_cache: Optional[str] = None
    traj_cache_entries: int = 32       #: LRU budget, pruned after each job
    #: per-job worker processes when a submit doesn't say (0 = per CPU)
    default_jobs: int = 1
    cancel_grace_s: float = 30.0


def _n_cells(spec: JobSpec) -> int:
    """Total cells a spec will execute (the progress denominator)."""
    c = spec.config
    if spec.kind == "sedov":
        return len(c.scales) * len(c.policies)
    if spec.kind == "scalebench":
        return len(c.scales) * len(c.distributions) * len(c.x_values)
    if spec.kind == "resilience":
        return 3 + (1 if c.check_determinism else 0)
    return 0


@dataclasses.dataclass
class _Job:
    """Server-side record of one submitted job."""

    job_id: str
    spec: JobSpec
    journal_dir: str
    cancel_file: str
    n_cells: int
    state: str = "queued"       #: queued|running|done|failed|cancelled
    events: List[Dict] = dataclasses.field(default_factory=list)
    result: Optional[JobResult] = None
    error: Optional[str] = None
    done: asyncio.Event = dataclasses.field(default_factory=asyncio.Event)

    @property
    def completed_cells(self) -> int:
        return sum(
            1 for e in self.events if e["kind"] in ("complete", "resume_hit")
        )

    def status(self) -> Dict:
        out = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "cells_total": self.n_cells,
            "cells_done": self.completed_cells,
            "n_events": len(self.events),
            "journal_dir": self.journal_dir,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["exit_code"] = self.result.exit_code
            out["digest"] = self.result.digest
            out["cancelled"] = self.result.cancelled
            out["pattern_cache"] = dict(self.result.pattern_cache)
            out["traj_cache"] = dict(self.result.traj_cache)
        return out


class JobService:
    """The asyncio server plus its scheduler state."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.queue = AdmissionQueue(config.quotas)
        self.jobs: Dict[str, _Job] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = asyncio.Event()
        self._client_tasks: set = set()
        #: tenant → pooled cache counters over finished jobs
        self.tenant_caches: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.quotas.max_active,
            thread_name_prefix="repro-job",
        )
        Path(self.config.journal_root).mkdir(parents=True, exist_ok=True)
        if self.config.traj_cache is not None:
            from ..perf.trajcache import CACHE_ENV

            Path(self.config.traj_cache).mkdir(parents=True, exist_ok=True)
            os.environ[CACHE_ENV] = self.config.traj_cache
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )

    @property
    def address(self) -> tuple:
        """(host, port) actually bound (resolves port 0)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        async with self._server:
            await self._closing.wait()

    async def close(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Unstick handlers parked on readline before the loop closes.
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ #
    # protocol plumbing
    # ------------------------------------------------------------------ #

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    response = await self._dispatch(request)
                except QuotaExceeded as exc:
                    response = {"ok": False, "error": str(exc),
                                "quota": True}
                except (ValueError, KeyError, TypeError) as exc:
                    response = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._client_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        handler = {
            "submit": self._op_submit,
            "status": self._op_status,
            "events": self._op_events,
            "query": self._op_query,
            "cancel": self._op_cancel,
            "result": self._op_result,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            raise ValueError(f"unknown op {op!r}")
        return await handler(request)

    def _job(self, request: Dict) -> _Job:
        job_id = request.get("job_id")
        if job_id not in self.jobs:
            raise KeyError(f"unknown job_id {job_id!r}")
        return self.jobs[job_id]

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #

    async def _op_ping(self, request: Dict) -> Dict:
        return {
            "ok": True,
            "jobs": len(self.jobs),
            "active": self.queue.n_active,
            "queued": len(self.queue),
        }

    async def _op_shutdown(self, request: Dict) -> Dict:
        self._loop.call_soon(self._closing.set)
        return {"ok": True}

    async def _op_submit(self, request: Dict) -> Dict:
        kind = request.get("kind")
        tenant = str(request.get("tenant", "default"))
        priority = int(request.get("priority", 0))
        jobs = int(request.get("jobs", self.config.default_jobs))
        resume_of = request.get("resume_of")
        job_id = f"job-{next(self._ids):04d}"
        if resume_of is not None:
            previous = self.jobs.get(resume_of)
            if previous is None:
                raise KeyError(f"unknown resume_of job {resume_of!r}")
            journal_dir = previous.journal_dir
        else:
            journal_dir = str(Path(self.config.journal_root) / job_id)
        supervise = SupervisorConfig(
            journal_dir=journal_dir,
            resume=resume_of is not None,
            live_events=True,
            cancel_grace_s=self.config.cancel_grace_s,
        )
        spec = spec_from_params(
            kind,
            request.get("params"),
            tenant=tenant,
            priority=priority,
            jobs=jobs,
            supervise=supervise,
        )
        job = _Job(
            job_id=job_id,
            spec=spec,
            journal_dir=journal_dir,
            cancel_file=str(
                Path(self.config.journal_root) / f"{job_id}.cancel"
            ),
            n_cells=_n_cells(spec),
        )
        self.queue.submit(
            QueuedJob(
                job_id=job_id, tenant=tenant, priority=priority, payload=job
            )
        )
        self.jobs[job_id] = job
        self._pump()
        return {"ok": True, "job_id": job_id, "state": job.state}

    async def _op_status(self, request: Dict) -> Dict:
        if "job_id" in request:
            return {"ok": True, "job": self._job(request).status()}
        tenant = request.get("tenant")
        if tenant is None:
            raise ValueError("status needs job_id or tenant")
        jobs = [
            j.status() for j in self.jobs.values()
            if j.spec.tenant == tenant
        ]
        return {
            "ok": True,
            "tenant": tenant,
            "active": self.queue.active_for(tenant),
            "queued": self.queue.queued_for(tenant),
            "jobs": jobs,
            "cache": dict(self.tenant_caches.get(tenant, {})),
        }

    async def _op_events(self, request: Dict) -> Dict:
        job = self._job(request)
        since = int(request.get("since", 0))
        events = job.events[since:]
        return {
            "ok": True,
            "events": events,
            "next": since + len(events),
            "state": job.state,
        }

    async def _op_cancel(self, request: Dict) -> Dict:
        job = self._job(request)
        if job.state == "queued":
            self.queue.remove(job.job_id)
            job.state = "cancelled"
            job.done.set()
            return {"ok": True, "state": job.state}
        if job.state == "running":
            from ..perf.cancel import CancelToken

            CancelToken(job.cancel_file).set()
            return {"ok": True, "state": "cancelling"}
        return {"ok": True, "state": job.state}

    async def _op_result(self, request: Dict) -> Dict:
        job = self._job(request)
        if not job.done.is_set() and request.get("wait"):
            timeout = request.get("timeout_s")
            try:
                await asyncio.wait_for(
                    job.done.wait(),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                return {"ok": False, "error": "timeout", "state": job.state}
        if not job.done.is_set():
            return {"ok": False, "error": "job still running",
                    "state": job.state}
        out = {"ok": True, "state": job.state}
        if job.result is not None:
            out["result"] = job.result.to_wire()
        if job.error is not None:
            out["error"] = job.error
        return out

    async def _op_query(self, request: Dict) -> Dict:
        """Plan-engine SQL over a job's (possibly still-spooling)
        executor-event telemetry — live snapshot semantics."""
        job = self._job(request)
        statement = request.get("sql")
        if not statement:
            raise ValueError("query needs a 'sql' statement")

        def run_query():
            from ..telemetry.dataset import TelemetryDataset
            from ..telemetry.query import sql_query

            spools = sorted(
                Path(job.journal_dir).glob("sweep-*/telemetry")
            )
            if not spools:
                return None
            ds = TelemetryDataset.open(spools[0], live=True)
            return sql_query(ds, statement).run()

        table = await self._loop.run_in_executor(self._pool, run_query)
        if table is None:
            return {"ok": True, "columns": {}, "n_rows": 0,
                    "state": job.state, "note": "no telemetry spooled yet"}
        return {
            "ok": True,
            "columns": {n: table[n].tolist() for n in table.names},
            "n_rows": table.n_rows,
            "state": job.state,
        }

    # ------------------------------------------------------------------ #
    # scheduling + execution
    # ------------------------------------------------------------------ #

    def _pump(self) -> None:
        """Start every eligible queued job (called on submit/finish)."""
        while True:
            entry = self.queue.next_job()
            if entry is None:
                return
            job: _Job = entry.payload
            self.queue.mark_started(job.spec.tenant)
            job.state = "running"
            future = self._loop.run_in_executor(
                self._pool, self._run_job_sync, job
            )
            future.add_done_callback(
                lambda f, job=job: self._loop.call_soon_threadsafe(
                    self._finish_job, job, f
                )
            )

    def _run_job_sync(self, job: _Job) -> JobResult:
        """Worker-thread body: execute one spec under the runner."""
        runner = JobRunner(
            cancel_path=job.cancel_file, shared_pattern_cache=True
        )

        def on_event(ev) -> None:
            record = {
                "t_s": ev.t_s, "cell": ev.cell, "kind": ev.kind,
                "attempt": ev.attempt, "detail": ev.detail,
            }
            self._loop.call_soon_threadsafe(job.events.append, record)

        return runner.run(job.spec, on_event=on_event)

    def _finish_job(self, job: _Job, future) -> None:
        self.queue.mark_finished(job.spec.tenant)
        try:
            result = future.result()
        except Exception as exc:       # experiment raised: a failed job
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.result = result
            job.state = "cancelled" if result.cancelled else "done"
            self._absorb_cache_counters(job.spec.tenant, result)
        try:
            os.unlink(job.cancel_file)
        except OSError:
            pass
        job.done.set()
        if self.config.traj_cache is not None:
            from ..perf.trajcache import prune_trajectory_cache

            self._loop.run_in_executor(
                self._pool,
                prune_trajectory_cache,
                self.config.traj_cache,
                self.config.traj_cache_entries,
            )
        self._pump()

    def _absorb_cache_counters(self, tenant: str, result: JobResult) -> None:
        pooled = self.tenant_caches.setdefault(
            tenant,
            {"pattern_hits": 0, "pattern_misses": 0,
             "traj_hits": 0, "traj_misses": 0},
        )
        pooled["pattern_hits"] += result.pattern_cache.get("hits", 0)
        pooled["pattern_misses"] += result.pattern_cache.get("misses", 0)
        pooled["traj_hits"] += result.traj_cache.get("hits", 0)
        pooled["traj_misses"] += result.traj_cache.get("misses", 0)


async def serve(config: ServiceConfig, ready=None) -> int:
    """Run a service until ``shutdown`` (the ``repro serve`` body)."""
    service = JobService(config)
    await service.start()
    host, port = service.address
    print(f"repro service listening on {host}:{port}")
    print(f"journal root: {config.journal_root}")
    if config.traj_cache is not None:
        print(f"trajectory cache: {config.traj_cache}")
    print(f"quotas: {config.quotas.max_active} active "
          f"({config.quotas.max_active_per_tenant}/tenant), "
          f"{config.quotas.max_queued} queued "
          f"({config.quotas.max_queued_per_tenant}/tenant)", flush=True)
    if ready is not None:
        ready(service)
    try:
        await service.serve_forever()
    finally:
        await service.close()
    return 0
