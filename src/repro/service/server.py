"""``repro serve`` — the multi-tenant placement job service.

A line-delimited-JSON protocol over a local TCP socket: each request is
one JSON object on one line, each response one JSON object on one line.
Verbs (see ``docs/service.md`` for the full protocol):

* ``submit``  — queue an experiment: ``{"op": "submit", "kind":
  "sedov", "params": {...}, "tenant": "alice", "priority": 5}``.
  Admission control enforces per-tenant queue quotas; ``resume_of``
  continues a cancelled/interrupted job's journal bit-identically;
  ``idempotency_key`` makes retried submits return the existing job
  instead of double-running; ``deadline_s`` bounds the job's wall
  clock.
* ``status``  — one job's state + progress, or a tenant's aggregate
  (active/queued counts, pooled cache hit counters).
* ``events``  — incremental executor-event stream (``since`` cursor).
* ``query``   — run plan-engine SQL against a *running* job's spooled
  telemetry partitions (live snapshot semantics: committed partitions
  only, torn files skipped).
* ``cancel``  — cooperative cancellation: queued jobs are withdrawn;
  running jobs get their cancel flag set and stop at the next epoch
  boundary, leaving a resumable journal.
* ``result``  — the finished job's rendered report text, digest, and
  exit code (``wait: true`` blocks until completion).
* ``ping`` / ``shutdown`` — liveness and orderly stop; ``{"op":
  "shutdown", "drain": true}`` checkpoints running jobs first (see
  below).

Durability: with ``--state DIR`` every lifecycle transition is written
through a crash-safe :class:`~repro.service.store.JobStore` *before*
it takes effect, and boot runs :func:`~repro.service.recovery.
recover_jobs` — queued jobs are re-admitted in order, mid-run jobs
resume their PR 6 sweep journals bit-identically, and a spec whose
executions have crashed the server ``--poison-threshold`` times is
quarantined as failed instead of crash-looping the pool.  A full queue
sheds lowest-priority-first: an arriving higher-priority submit evicts
the lowest queued job (which lands in state ``shed``), and a submit
that cannot displace anything gets a structured ``overloaded``
response with a ``retry_after_s`` hint.

Execution: jobs run in a thread pool (each job may itself fan out a
supervised *process* pool per its ``jobs`` parameter); every job gets a
private journal under the service root, a cancel flag file, live event
spooling, and the process-wide shared pattern cache.  Tenants share
the on-disk trajectory cache, LRU-pruned after every job.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..perf.supervisor import SupervisorConfig
from .queue import AdmissionQueue, QueuedJob, QuotaConfig, QuotaExceeded
from .recovery import recover_jobs
from .runner import JobResult, JobRunner
from .spec import REGISTRY, JobSpec, spec_from_params
from .store import JobRecord, JobStore, spec_hash

__all__ = ["JobService", "ServiceConfig", "serve", "MAX_FRAME_BYTES"]

#: hard bound on one request line; longer frames get a structured error
#: and the connection resynchronizes at the next newline
MAX_FRAME_BYTES = 1 << 20


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """One service instance's knobs (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0                      #: 0 = ephemeral (printed at start)
    journal_root: str = ".repro-service"
    quotas: QuotaConfig = QuotaConfig()
    #: shared on-disk trajectory cache for every tenant (None = off)
    traj_cache: Optional[str] = None
    traj_cache_entries: int = 32       #: LRU budget, pruned after each job
    #: per-job worker processes when a submit doesn't say (0 = per CPU)
    default_jobs: int = 1
    cancel_grace_s: float = 30.0
    #: durable job store + restart recovery root (None = in-memory only,
    #: the pre-durability behaviour)
    state_dir: Optional[str] = None
    #: default per-job wall-clock deadline (None = unbounded); a submit's
    #: own ``deadline_s`` overrides it
    default_deadline_s: Optional[float] = None
    #: server crashes per spec content-hash before the circuit breaker
    #: quarantines the spec as failed at recovery
    poison_threshold: int = 3


def _n_cells(spec: JobSpec) -> int:
    """Total cells a spec will execute (the progress denominator)."""
    c = spec.config
    if spec.kind == "sedov":
        return len(c.scales) * len(c.policies)
    if spec.kind == "scalebench":
        return len(c.scales) * len(c.distributions) * len(c.x_values)
    if spec.kind == "resilience":
        return 3 + (1 if c.check_determinism else 0)
    return 0


@dataclasses.dataclass
class _Job:
    """Server-side record of one submitted job."""

    job_id: str
    seq: int
    spec: JobSpec
    params: Dict
    journal_dir: str
    cancel_file: str
    n_cells: int
    spec_hash: str
    state: str = "queued"   #: queued|running|done|failed|cancelled|shed
    idempotency_key: Optional[str] = None
    deadline_s: Optional[float] = None
    resume_of: Optional[str] = None
    crashes: int = 0
    #: set while a drain shutdown is checkpointing this job (its cancel
    #: is a *suspension*: the store keeps it queued for the next boot)
    draining: bool = False
    events: List[Dict] = dataclasses.field(default_factory=list)
    result: Optional[JobResult] = None
    error: Optional[str] = None
    done: asyncio.Event = dataclasses.field(default_factory=asyncio.Event)

    @property
    def completed_cells(self) -> int:
        return sum(
            1 for e in self.events if e["kind"] in ("complete", "resume_hit")
        )

    def status(self) -> Dict:
        out = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "cells_total": self.n_cells,
            "cells_done": self.completed_cells,
            "n_events": len(self.events),
            "journal_dir": self.journal_dir,
        }
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.crashes:
            out["crashes"] = self.crashes
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["exit_code"] = self.result.exit_code
            out["digest"] = self.result.digest
            out["cancelled"] = self.result.cancelled
            out["pattern_cache"] = dict(self.result.pattern_cache)
            out["traj_cache"] = dict(self.result.traj_cache)
        return out

    def record(self) -> JobRecord:
        """The job's durable form (what the store persists)."""
        return JobRecord(
            job_id=self.job_id,
            seq=self.seq,
            kind=self.spec.kind,
            params=self.params,
            tenant=self.spec.tenant,
            priority=self.spec.priority,
            jobs=self.spec.jobs,
            state=self.state,
            journal_dir=self.journal_dir,
            spec_hash=self.spec_hash,
            idempotency_key=self.idempotency_key,
            deadline_s=self.deadline_s,
            resume_of=self.resume_of,
            crashes=self.crashes,
            digest=self.result.digest if self.result else None,
            exit_code=self.result.exit_code if self.result else None,
            error=self.error,
            cancelled=bool(self.result.cancelled) if self.result else False,
        )


class JobService:
    """The asyncio server plus its scheduler state."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.queue = AdmissionQueue(config.quotas)
        self.jobs: Dict[str, _Job] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = asyncio.Event()
        self._client_tasks: set = set()
        #: tenant → pooled cache counters over finished jobs
        self.tenant_caches: Dict[str, Dict[str, int]] = {}
        self.store: Optional[JobStore] = None
        self.recovery = None           #: the boot RecoveryPlan (or None)
        self._idempotency: Dict[str, str] = {}
        self._draining = False
        #: recent job wall times, for the overload Retry-After hint
        self._recent_s: List[float] = []

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.quotas.max_active,
            thread_name_prefix="repro-job",
        )
        Path(self.config.journal_root).mkdir(parents=True, exist_ok=True)
        if self.config.traj_cache is not None:
            from ..perf.trajcache import CACHE_ENV

            Path(self.config.traj_cache).mkdir(parents=True, exist_ok=True)
            os.environ[CACHE_ENV] = self.config.traj_cache
        if self.config.state_dir is not None:
            self.store = JobStore(self.config.state_dir)
            self._recover()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._pump()

    def _recover(self) -> None:
        """Replay the job store into live scheduler state (boot path)."""
        plan = recover_jobs(self.store, self.config.poison_threshold)
        self.recovery = plan
        self._ids = itertools.count(plan.max_seq + 1)
        for rec in plan.finished:
            job = self._job_from_record(rec)
            job.state = rec.state
            job.error = rec.error
            if rec.state != "shed":
                # Digest/exit survive a restart; the rendered text does
                # not — the result verb says so instead of guessing.
                job.result = JobResult(
                    kind=rec.kind,
                    tenant=rec.tenant,
                    text="(result text not retained across a server "
                         "restart; digest and exit code are)",
                    exit_code=rec.exit_code if rec.exit_code is not None
                    else (1 if rec.state == "failed" else 0),
                    digest=rec.digest,
                    cancelled=rec.cancelled,
                )
            job.done.set()
            self.jobs[job.job_id] = job
        for rec in plan.requeue:
            job = self._job_from_record(rec)
            # A cancel flag from the previous incarnation (killed while
            # *cancelling*) is transient intent, not durable state:
            # left in place it would insta-cancel the recovered run.
            # The durable record survived, so the job runs to done.
            try:
                os.unlink(job.cancel_file)
            except OSError:
                pass
            self.jobs[job.job_id] = job
            # Quotas were paid at the original submit: recovery
            # re-admission must never bounce surviving work.
            self.queue.readmit(
                QueuedJob(job_id=job.job_id, tenant=rec.tenant,
                          priority=rec.priority, payload=job)
            )
        for job in self.jobs.values():
            if job.idempotency_key:
                self._idempotency[job.idempotency_key] = job.job_id

    def _job_from_record(self, rec: JobRecord) -> _Job:
        """Rebuild a live job from its durable record.

        The spec goes back through :func:`spec_from_params` — the same
        path a fresh submit takes — with ``resume=True`` supervision so
        an existing sweep journal replays instead of re-running.
        """
        supervise = SupervisorConfig(
            journal_dir=rec.journal_dir,
            resume=True,
            live_events=True,
            cancel_grace_s=self.config.cancel_grace_s,
        )
        spec = spec_from_params(
            rec.kind, rec.params, tenant=rec.tenant, priority=rec.priority,
            jobs=rec.jobs, supervise=supervise,
        )
        return _Job(
            job_id=rec.job_id,
            seq=rec.seq,
            spec=spec,
            params=dict(rec.params),
            journal_dir=rec.journal_dir,
            cancel_file=str(
                Path(self.config.journal_root) / f"{rec.job_id}.cancel"
            ),
            n_cells=_n_cells(spec),
            spec_hash=rec.spec_hash,
            state="queued",
            idempotency_key=rec.idempotency_key,
            deadline_s=rec.deadline_s,
            resume_of=rec.resume_of,
            crashes=rec.crashes,
        )

    @property
    def address(self) -> tuple:
        """(host, port) actually bound (resolves port 0)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        async with self._server:
            await self._closing.wait()

    async def close(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Unstick handlers parked on read before the loop closes.
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.store is not None:
            self.store.flush()

    # ------------------------------------------------------------------ #
    # protocol plumbing
    # ------------------------------------------------------------------ #

    async def _handle_client(self, reader, writer) -> None:
        """Connection loop with explicit framing.

        The loop must survive anything a client throws at it: malformed
        or truncated JSON, unknown ops, and frames past
        :data:`MAX_FRAME_BYTES` all produce a structured ``ok: false``
        response and leave the connection usable.  Oversized frames are
        discarded up to the next newline (one error per frame, however
        many reads it spans).
        """
        task = asyncio.current_task()
        self._client_tasks.add(task)
        buf = bytearray()
        discarding = False
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buf.extend(chunk)
                while True:
                    nl = buf.find(b"\n")
                    if nl < 0:
                        if len(buf) > MAX_FRAME_BYTES:
                            if not discarding:
                                discarding = True
                                writer.write(_encode({
                                    "ok": False,
                                    "error": f"frame exceeds "
                                             f"{MAX_FRAME_BYTES} bytes",
                                    "frame_too_large": True,
                                }))
                                await writer.drain()
                            buf.clear()
                        break
                    line = bytes(buf[:nl])
                    del buf[:nl + 1]
                    if discarding:
                        discarding = False   # tail of the oversized frame
                        continue
                    if len(line) > MAX_FRAME_BYTES:
                        # Complete line, but past the bound (it slipped
                        # under the mid-read check by arriving within
                        # one read of its newline).
                        writer.write(_encode({
                            "ok": False,
                            "error": f"frame exceeds "
                                     f"{MAX_FRAME_BYTES} bytes",
                            "frame_too_large": True,
                        }))
                        await writer.drain()
                        continue
                    response = await self._respond(line)
                    writer.write(_encode(response))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._client_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _respond(self, line: bytes) -> Dict:
        """One frame in, one structured response out — never raises."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            return await self._dispatch(request)
        except QuotaExceeded as exc:
            return {"ok": False, "error": str(exc), "quota": True}
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc}",
                    "malformed": True}
        except (ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:       # last-ditch: the loop stays alive
            return {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
                "internal": True,
            }

    async def _dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        handler = {
            "submit": self._op_submit,
            "status": self._op_status,
            "events": self._op_events,
            "query": self._op_query,
            "cancel": self._op_cancel,
            "result": self._op_result,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            raise ValueError(f"unknown op {op!r}")
        return await handler(request)

    def _job(self, request: Dict) -> _Job:
        job_id = request.get("job_id")
        if job_id not in self.jobs:
            raise KeyError(f"unknown job_id {job_id!r}")
        return self.jobs[job_id]

    def _persist(self, job: _Job, force: bool = False) -> None:
        """Write-through: the store sees every transition as it happens."""
        if self.store is not None:
            self.store.write(job.record(), force=force)

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #

    async def _op_ping(self, request: Dict) -> Dict:
        out = {
            "ok": True,
            "jobs": len(self.jobs),
            "active": self.queue.n_active,
            "queued": len(self.queue),
            "draining": self._draining,
        }
        if self.store is not None:
            out["state_dir"] = str(self.store.root)
        return out

    async def _op_shutdown(self, request: Dict) -> Dict:
        if request.get("drain"):
            return self._start_drain()
        self._loop.call_soon(self._closing.set)
        return {"ok": True}

    def _start_drain(self) -> Dict:
        """Graceful drain: stop admitting, checkpoint running jobs
        (cooperative cancel leaving resumable journals, re-queued in the
        store for the next boot), flush the store, then stop."""
        from ..perf.cancel import CancelToken

        self._draining = True
        running = [j for j in self.jobs.values() if j.state == "running"]
        for job in running:
            job.draining = True
            CancelToken(job.cancel_file).set()

        async def finish_drain():
            if running:
                grace = self.config.cancel_grace_s + 30.0
                await asyncio.wait(
                    [asyncio.ensure_future(j.done.wait()) for j in running],
                    timeout=grace,
                )
            if self.store is not None:
                self.store.flush()
            self._closing.set()

        self._loop.create_task(finish_drain())
        return {"ok": True, "draining": True, "checkpointing": len(running),
                "queued_kept": len(self.queue)}

    async def _op_submit(self, request: Dict) -> Dict:
        if self._draining:
            return {"ok": False, "error": "server is draining for shutdown",
                    "draining": True}
        kind = request.get("kind")
        params = dict(request.get("params") or {})
        tenant = str(request.get("tenant", "default"))
        priority = int(request.get("priority", 0))
        jobs = int(request.get("jobs", self.config.default_jobs))
        resume_of = request.get("resume_of")
        idempotency_key = request.get("idempotency_key")
        deadline_s = request.get("deadline_s", self.config.default_deadline_s)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ValueError(f"deadline_s must be > 0, got {deadline_s}")

        # Idempotent submission: a retried submit (client reconnect, lost
        # ack) returns the job the first attempt created — never a twin.
        if idempotency_key is not None:
            existing_id = self._idempotency.get(str(idempotency_key))
            if existing_id is not None and existing_id in self.jobs:
                existing = self.jobs[existing_id]
                return {"ok": True, "job_id": existing_id,
                        "state": existing.state, "deduped": True}

        shash = spec_hash(kind, params) if kind else ""
        if (
            self.store is not None
            and self.store.is_poisoned(shash, self.config.poison_threshold)
        ):
            return {
                "ok": False,
                "error": f"spec {shash[:12]}… is quarantined: it crashed "
                         f"the server {self.store.crash_count(shash)} "
                         f"time(s) (poison-spec circuit breaker)",
                "poisoned": True,
            }

        # Overload shedding on a full queue: an arriving higher-priority
        # submit displaces the lowest-priority queued job; otherwise the
        # submit is rejected with a structured overload response.
        if len(self.queue) >= self.config.quotas.max_queued:
            victim = self.queue.shed_lowest(below_priority=priority)
            if victim is None:
                return {
                    "ok": False,
                    "error": f"overloaded: queue full "
                             f"({self.config.quotas.max_queued} jobs)",
                    "overloaded": True,
                    "retry_after_s": self._retry_after_hint(),
                }
            self._shed(victim.payload)

        seq = next(self._ids)
        job_id = f"job-{seq:04d}"
        if resume_of is not None:
            previous = self.jobs.get(resume_of)
            if previous is None:
                raise KeyError(f"unknown resume_of job {resume_of!r}")
            journal_dir = previous.journal_dir
        else:
            journal_dir = str(Path(self.config.journal_root) / job_id)
        supervise = SupervisorConfig(
            journal_dir=journal_dir,
            resume=resume_of is not None,
            live_events=True,
            cancel_grace_s=self.config.cancel_grace_s,
        )
        spec = spec_from_params(
            kind,
            params,
            tenant=tenant,
            priority=priority,
            jobs=jobs,
            supervise=supervise,
        )
        job = _Job(
            job_id=job_id,
            seq=seq,
            spec=spec,
            params=params,
            journal_dir=journal_dir,
            cancel_file=str(
                Path(self.config.journal_root) / f"{job_id}.cancel"
            ),
            n_cells=_n_cells(spec),
            spec_hash=shash,
            state="submitted",
            idempotency_key=(
                str(idempotency_key) if idempotency_key is not None else None
            ),
            deadline_s=deadline_s,
            resume_of=resume_of,
        )
        # Admission first, then one write-ahead persist of the queued
        # state: the ack only ever promises "queued", so the transient
        # submitted->queued hop needs no fsync of its own, and a quota
        # rejection leaves no record to clean up.  A crash in between
        # loses only a job that was never acknowledged — the client's
        # idempotency-key retry recreates it.
        self.queue.submit(
            QueuedJob(
                job_id=job_id, tenant=tenant, priority=priority,
                payload=job,
            )
        )
        job.state = "queued"
        self._persist(job)
        self.jobs[job_id] = job
        if job.idempotency_key is not None:
            self._idempotency[job.idempotency_key] = job_id
        self._pump()
        return {"ok": True, "job_id": job_id, "state": job.state}

    def _shed(self, job: _Job) -> None:
        """Evict one queued job to admit a higher-priority submit."""
        job.state = "shed"
        job.error = (
            "shed: displaced from a full queue by a higher-priority submit"
        )
        self._persist(job)
        job.done.set()

    def _retry_after_hint(self) -> float:
        """Seconds until a slot plausibly frees: recent mean job time
        scaled by the backlog per execution slot (floor 1s, default 5s)."""
        if not self._recent_s:
            return 5.0
        mean_s = sum(self._recent_s) / len(self._recent_s)
        backlog = max(1.0, len(self.queue) / self.config.quotas.max_active)
        return round(max(1.0, mean_s * backlog), 1)

    async def _op_status(self, request: Dict) -> Dict:
        if "job_id" in request:
            return {"ok": True, "job": self._job(request).status()}
        tenant = request.get("tenant")
        if tenant is None:
            raise ValueError("status needs job_id or tenant")
        jobs = [
            j.status() for j in self.jobs.values()
            if j.spec.tenant == tenant
        ]
        return {
            "ok": True,
            "tenant": tenant,
            "active": self.queue.active_for(tenant),
            "queued": self.queue.queued_for(tenant),
            "jobs": jobs,
            "cache": dict(self.tenant_caches.get(tenant, {})),
        }

    async def _op_events(self, request: Dict) -> Dict:
        job = self._job(request)
        since = int(request.get("since", 0))
        events = job.events[since:]
        return {
            "ok": True,
            "events": events,
            "next": since + len(events),
            "state": job.state,
        }

    async def _op_cancel(self, request: Dict) -> Dict:
        job = self._job(request)
        if job.state == "queued":
            self.queue.remove(job.job_id)
            job.state = "cancelled"
            self._persist(job)
            job.done.set()
            return {"ok": True, "state": job.state}
        if job.state == "running":
            from ..perf.cancel import CancelToken

            CancelToken(job.cancel_file).set()
            return {"ok": True, "state": "cancelling"}
        return {"ok": True, "state": job.state}

    async def _op_result(self, request: Dict) -> Dict:
        job = self._job(request)
        if not job.done.is_set() and request.get("wait"):
            timeout = request.get("timeout_s")
            try:
                await asyncio.wait_for(
                    job.done.wait(),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                return {"ok": False, "error": "timeout", "state": job.state}
        if not job.done.is_set():
            return {"ok": False, "error": "job still running",
                    "state": job.state}
        out = {"ok": True, "state": job.state}
        if job.result is not None:
            out["result"] = job.result.to_wire()
        if job.error is not None:
            out["error"] = job.error
        return out

    async def _op_query(self, request: Dict) -> Dict:
        """Plan-engine SQL over a job's (possibly still-spooling)
        executor-event telemetry — live snapshot semantics."""
        job = self._job(request)
        statement = request.get("sql")
        if not statement:
            raise ValueError("query needs a 'sql' statement")

        def run_query():
            from ..telemetry.dataset import TelemetryDataset
            from ..telemetry.query import sql_query

            spools = sorted(
                Path(job.journal_dir).glob("sweep-*/telemetry")
            )
            if not spools:
                return None
            ds = TelemetryDataset.open(spools[0], live=True)
            return sql_query(ds, statement).run()

        table = await self._loop.run_in_executor(self._pool, run_query)
        if table is None:
            return {"ok": True, "columns": {}, "n_rows": 0,
                    "state": job.state, "note": "no telemetry spooled yet"}
        return {
            "ok": True,
            "columns": {n: table[n].tolist() for n in table.names},
            "n_rows": table.n_rows,
            "state": job.state,
        }

    # ------------------------------------------------------------------ #
    # scheduling + execution
    # ------------------------------------------------------------------ #

    def _pump(self) -> None:
        """Start every eligible queued job (called on submit/finish)."""
        if self._draining:
            return
        while True:
            entry = self.queue.next_job()
            if entry is None:
                return
            job: _Job = entry.payload
            self.queue.mark_started(job.spec.tenant)
            job.state = "running"
            self._persist(job)
            deadline_ts = (
                time.time() + job.deadline_s
                if job.deadline_s is not None else None
            )
            t0 = time.monotonic()
            future = self._loop.run_in_executor(
                self._pool, self._run_job_sync, job, deadline_ts
            )
            future.add_done_callback(
                lambda f, job=job, t0=t0: self._loop.call_soon_threadsafe(
                    self._finish_job, job, f, t0
                )
            )

    def _run_job_sync(self, job: _Job, deadline_ts: Optional[float]) -> JobResult:
        """Worker-thread body: execute one spec under the runner."""
        runner = JobRunner(
            cancel_path=job.cancel_file, shared_pattern_cache=True,
            deadline_ts=deadline_ts,
        )

        def on_event(ev) -> None:
            record = {
                "t_s": ev.t_s, "cell": ev.cell, "kind": ev.kind,
                "attempt": ev.attempt, "detail": ev.detail,
            }
            self._loop.call_soon_threadsafe(job.events.append, record)

        return runner.run(job.spec, on_event=on_event)

    def _finish_job(self, job: _Job, future, t0: float) -> None:
        self.queue.mark_finished(job.spec.tenant)
        self._recent_s = (self._recent_s + [time.monotonic() - t0])[-8:]
        try:
            result = future.result()
        except Exception as exc:       # experiment raised: a failed job
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._persist(job)
        else:
            job.result = result
            if result.deadline_exceeded:
                job.state = "failed"
                job.error = (
                    f"deadline_s={job.deadline_s:g} exceeded; "
                    "partial journal kept (resume_of continues it)"
                )
                self._persist(job)
            elif result.cancelled and job.draining:
                # Drain checkpoint: in-memory the job ends cancelled,
                # but the store keeps it queued so the next boot resumes
                # its journal bit-identically.
                job.state = "cancelled"
                if self.store is not None:
                    rec = job.record()
                    rec.state = "queued"
                    rec.error = None
                    rec.exit_code = None
                    rec.cancelled = False
                    self.store.write(rec, force=True)
            else:
                job.state = "cancelled" if result.cancelled else "done"
                self._persist(job)
                if (
                    self.store is not None
                    and job.state == "done"
                    and job.spec_hash
                ):
                    # A clean completion closes the circuit breaker.
                    self.store.clear_poison(job.spec_hash)
            self._absorb_cache_counters(job.spec.tenant, result)
        try:
            os.unlink(job.cancel_file)
        except OSError:
            pass
        job.done.set()
        if self.config.traj_cache is not None:
            from ..perf.trajcache import prune_trajectory_cache

            self._loop.run_in_executor(
                self._pool,
                prune_trajectory_cache,
                self.config.traj_cache,
                self.config.traj_cache_entries,
            )
        self._pump()

    def _absorb_cache_counters(self, tenant: str, result: JobResult) -> None:
        pooled = self.tenant_caches.setdefault(
            tenant,
            {"pattern_hits": 0, "pattern_misses": 0,
             "traj_hits": 0, "traj_misses": 0},
        )
        pooled["pattern_hits"] += result.pattern_cache.get("hits", 0)
        pooled["pattern_misses"] += result.pattern_cache.get("misses", 0)
        pooled["traj_hits"] += result.traj_cache.get("hits", 0)
        pooled["traj_misses"] += result.traj_cache.get("misses", 0)


def _encode(response: Dict) -> bytes:
    return json.dumps(response).encode() + b"\n"


async def serve(config: ServiceConfig, ready=None) -> int:
    """Run a service until ``shutdown`` (the ``repro serve`` body)."""
    service = JobService(config)
    await service.start()
    host, port = service.address
    print(f"repro service listening on {host}:{port}")
    print(f"journal root: {config.journal_root}")
    if config.state_dir is not None:
        print(f"state dir: {config.state_dir} (durable job store)")
        if service.recovery is not None:
            for line in service.recovery.summary_lines():
                print(line)
    if config.traj_cache is not None:
        print(f"trajectory cache: {config.traj_cache}")
    print(f"quotas: {config.quotas.max_active} active "
          f"({config.quotas.max_active_per_tenant}/tenant), "
          f"{config.quotas.max_queued} queued "
          f"({config.quotas.max_queued_per_tenant}/tenant)", flush=True)
    if ready is not None:
        ready(service)
    try:
        await service.serve_forever()
    finally:
        await service.close()
    return 0
