"""Placement-as-a-service: the tenant-agnostic job layer.

The package splits "run an experiment" from "be a CLI subcommand":

* :mod:`~repro.service.spec` — serializable :class:`JobSpec` plus the
  :data:`REGISTRY` of experiment kinds (sedov / scalebench /
  resilience);
* :mod:`~repro.service.runner` — :class:`JobRunner` executes any spec
  through the supervised pool and returns a :class:`JobResult`;
* :mod:`~repro.service.render` — the one renderer both front ends
  share (byte-identical to the historical CLI output);
* :mod:`~repro.service.queue` — admission-controlled priority queue
  with per-tenant quotas;
* :mod:`~repro.service.store` / :mod:`~repro.service.recovery` — the
  crash-safe write-ahead job store and the restart-recovery path
  behind ``repro serve --state DIR``;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  ``repro serve`` asyncio front end and its blocking client.
"""

from .queue import AdmissionQueue, QueuedJob, QuotaConfig, QuotaExceeded
from .render import (
    digest_line,
    render_resilience,
    render_scalebench,
    render_sedov,
    render_text,
    supervised_lines,
)
from .runner import CANCELLED_EXIT_CODE, JobResult, JobRunner
from .spec import REGISTRY, ExperimentKind, JobOutcome, JobSpec, spec_from_params

__all__ = [
    "AdmissionQueue",
    "CANCELLED_EXIT_CODE",
    "ExperimentKind",
    "JobOutcome",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "QueuedJob",
    "QuotaConfig",
    "QuotaExceeded",
    "REGISTRY",
    "digest_line",
    "render_resilience",
    "render_scalebench",
    "render_sedov",
    "render_text",
    "spec_from_params",
    "supervised_lines",
]


def __getattr__(name):
    # Server pieces import asyncio machinery; load them on demand so the
    # CLI fast path (repro sedov → JobRunner) stays light.
    if name in ("JobService", "ServiceConfig", "serve"):
        from . import server

        return getattr(server, name)
    if name in ("ServiceClient", "ServiceError"):
        from . import client

        return getattr(client, name)
    if name in ("JobRecord", "JobStore", "StoreError", "spec_hash"):
        from . import store

        return getattr(store, name)
    if name in ("RecoveryPlan", "recover_jobs"):
        from . import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
