"""Minimal blocking client for the ``repro serve`` JSON-lines protocol.

Used by the test suite, the CI service-smoke job, and
``examples/service_client.py``; applications with their own event loop
can speak the one-line-JSON-per-message protocol directly.

The client survives a server restart: when the connection drops
mid-call it reconnects with jittered exponential backoff (bounded by a
retry budget) and replays the request.  That replay is only safe for
requests the server treats idempotently — reads (status/events/
result/ping/query), cancels (idempotent by design), and submits that
carry an ``idempotency_key`` (:meth:`ServiceClient.submit` generates
one automatically, so a replayed submit returns the job the first
attempt created instead of double-running it).  ``shutdown`` and raw
:meth:`call` requests without a key are never replayed.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from typing import Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]

#: ops safe to replay after a reconnect without any idempotency key
_IDEMPOTENT_OPS = frozenset(
    {"status", "events", "result", "ping", "query", "cancel"}
)


class ServiceError(RuntimeError):
    """The service replied ``ok: false`` (message is the server error)."""

    def __init__(self, response: Dict) -> None:
        super().__init__(response.get("error", "service error"))
        self.response = response


class ServiceClient:
    """One TCP connection to a running job service.

    Parameters
    ----------
    retries:
        Reconnect budget per call: after a connection loss the client
        makes up to this many reconnect-and-replay attempts (0 restores
        the fail-fast behaviour).  Only connection failures are
        retried; a server-side ``ok: false`` (:class:`ServiceError`)
        and request timeouts are returned to the caller immediately.
    backoff_base_s / backoff_max_s:
        Jittered exponential backoff between reconnect attempts:
        sleep ``uniform(0, min(base * 2**k, max))`` before attempt k.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 300.0,
        retries: int = 4,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._rng = random.Random()
        self._sock = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._file is None:
            return
        try:
            self._file.close()
        finally:
            self._sock.close()
            self._file = self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def call(self, request: Dict) -> Dict:
        """One request/response round trip; raises on ``ok: false``.

        Replayed across reconnects when the request is safe to replay
        (an idempotent op, or a submit carrying an ``idempotency_key``)
        and the retry budget allows.
        """
        retryable = (
            request.get("op") in _IDEMPOTENT_OPS
            or (request.get("op") == "submit"
                and request.get("idempotency_key") is not None)
        )
        attempts = 1 + (self.retries if retryable else 0)
        last_exc: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                cap = min(
                    self.backoff_base_s * (2 ** (attempt - 1)),
                    self.backoff_max_s,
                )
                time.sleep(self._rng.uniform(0.0, cap))
                try:
                    self.close()
                    self._connect()
                except OSError as exc:
                    last_exc = exc
                    continue
            try:
                return self._roundtrip(request)
            except (ConnectionError, BrokenPipeError, OSError) as exc:
                if isinstance(exc, socket.timeout):
                    raise  # a slow server is not a dead one
                last_exc = exc
        raise ConnectionError(
            f"service unreachable after {attempts} attempt(s): {last_exc}"
        )

    def _roundtrip(self, request: Dict) -> Dict:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # ------------------------------------------------------------------ #
    # verb helpers
    # ------------------------------------------------------------------ #

    def ping(self) -> Dict:
        return self.call({"op": "ping"})

    def submit(
        self,
        kind: str,
        params: Optional[Dict] = None,
        tenant: str = "default",
        priority: int = 0,
        jobs: int = 1,
        resume_of: Optional[str] = None,
        idempotency_key: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> str:
        """Submit a job; returns its ``job_id``.

        Every submit carries an idempotency key (a fresh UUID when the
        caller doesn't supply one), so the reconnect replay can never
        double-run a job whose first ack was lost.
        """
        request = {
            "op": "submit", "kind": kind, "params": params or {},
            "tenant": tenant, "priority": priority, "jobs": jobs,
            "idempotency_key": idempotency_key or uuid.uuid4().hex,
        }
        if resume_of is not None:
            request["resume_of"] = resume_of
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        return self.call(request)["job_id"]

    def status(self, job_id: str) -> Dict:
        return self.call({"op": "status", "job_id": job_id})["job"]

    def tenant_status(self, tenant: str) -> Dict:
        return self.call({"op": "status", "tenant": tenant})

    def events(self, job_id: str, since: int = 0) -> Dict:
        return self.call({"op": "events", "job_id": job_id, "since": since})

    def cancel(self, job_id: str) -> Dict:
        return self.call({"op": "cancel", "job_id": job_id})

    def query(self, job_id: str, sql: str) -> Dict:
        return self.call({"op": "query", "job_id": job_id, "sql": sql})

    def result(self, job_id: str, timeout_s: Optional[float] = None) -> Dict:
        """Block until the job finishes; returns the wire result dict."""
        response = self.call(
            {"op": "result", "job_id": job_id, "wait": True,
             "timeout_s": timeout_s}
        )
        return response

    def shutdown(self, drain: bool = False) -> None:
        request = {"op": "shutdown"}
        if drain:
            request["drain"] = True
        try:
            self.call(request)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------ #

    def stream_events(
        self, job_id: str, poll_s: float = 0.2
    ) -> "EventStream":
        return EventStream(self, job_id, poll_s)


class EventStream:
    """Iterator of executor events, polling until the job finishes."""

    def __init__(
        self, client: ServiceClient, job_id: str, poll_s: float
    ) -> None:
        self.client = client
        self.job_id = job_id
        self.poll_s = poll_s
        self.cursor = 0
        self.final_state: Optional[str] = None

    def __iter__(self):
        while True:
            reply = self.client.events(self.job_id, since=self.cursor)
            self.cursor = reply["next"]
            batch: List[Dict] = reply["events"]
            yield from batch
            if reply["state"] not in ("queued", "running"):
                if not batch:
                    self.final_state = reply["state"]
                    return
            elif not batch:
                time.sleep(self.poll_s)
