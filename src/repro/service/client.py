"""Minimal blocking client for the ``repro serve`` JSON-lines protocol.

Used by the test suite, the CI service-smoke job, and
``examples/service_client.py``; applications with their own event loop
can speak the one-line-JSON-per-message protocol directly.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service replied ``ok: false`` (message is the server error)."""

    def __init__(self, response: Dict) -> None:
        super().__init__(response.get("error", "service error"))
        self.response = response


class ServiceClient:
    """One TCP connection to a running job service."""

    def __init__(self, host: str, port: int, timeout_s: float = 300.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def call(self, request: Dict) -> Dict:
        """One request/response round trip; raises on ``ok: false``."""
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # ------------------------------------------------------------------ #
    # verb helpers
    # ------------------------------------------------------------------ #

    def ping(self) -> Dict:
        return self.call({"op": "ping"})

    def submit(
        self,
        kind: str,
        params: Optional[Dict] = None,
        tenant: str = "default",
        priority: int = 0,
        jobs: int = 1,
        resume_of: Optional[str] = None,
    ) -> str:
        """Submit a job; returns its ``job_id``."""
        request = {
            "op": "submit", "kind": kind, "params": params or {},
            "tenant": tenant, "priority": priority, "jobs": jobs,
        }
        if resume_of is not None:
            request["resume_of"] = resume_of
        return self.call(request)["job_id"]

    def status(self, job_id: str) -> Dict:
        return self.call({"op": "status", "job_id": job_id})["job"]

    def tenant_status(self, tenant: str) -> Dict:
        return self.call({"op": "status", "tenant": tenant})

    def events(self, job_id: str, since: int = 0) -> Dict:
        return self.call({"op": "events", "job_id": job_id, "since": since})

    def cancel(self, job_id: str) -> Dict:
        return self.call({"op": "cancel", "job_id": job_id})

    def query(self, job_id: str, sql: str) -> Dict:
        return self.call({"op": "query", "job_id": job_id, "sql": sql})

    def result(self, job_id: str, timeout_s: Optional[float] = None) -> Dict:
        """Block until the job finishes; returns the wire result dict."""
        response = self.call(
            {"op": "result", "job_id": job_id, "wait": True,
             "timeout_s": timeout_s}
        )
        return response

    def shutdown(self) -> None:
        try:
            self.call({"op": "shutdown"})
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------ #

    def stream_events(
        self, job_id: str, poll_s: float = 0.2
    ) -> "EventStream":
        return EventStream(self, job_id, poll_s)


class EventStream:
    """Iterator of executor events, polling until the job finishes."""

    def __init__(
        self, client: ServiceClient, job_id: str, poll_s: float
    ) -> None:
        self.client = client
        self.job_id = job_id
        self.poll_s = poll_s
        self.cursor = 0
        self.final_state: Optional[str] = None

    def __iter__(self):
        while True:
            reply = self.client.events(self.job_id, since=self.cursor)
            self.cursor = reply["next"]
            batch: List[Dict] = reply["events"]
            yield from batch
            if reply["state"] not in ("queued", "running"):
                if not batch:
                    self.final_state = reply["state"]
                    return
            elif not batch:
                time.sleep(self.poll_s)
