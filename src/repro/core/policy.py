"""Placement policy protocol and registry.

A *placement policy* maps SFC-ordered block costs to a block→rank
assignment (paper §V).  Policies receive:

* ``costs`` — per-block compute cost in block-ID (SFC) order.  The
  baseline infrastructure historically fixes these to 1; the paper's
  change #1 populates them from telemetry (§V-A3).
* ``n_ranks`` — number of simulation ranks.
* ``ctx`` — an optional :class:`~repro.core.context.PlacementContext`
  describing per-rank hardware (compute speed, NIC tier).  ``None``
  means the historical homogeneous regime; policies unaware of the
  context (including pre-migration third-party subclasses with a
  two-argument ``compute``) are simply called without it and behave as
  before, bit for bit.

and return an ``(n,)`` int64 array ``assignment`` with
``assignment[block_id] = rank``.

Policies must be deterministic given their inputs (redistribution runs
collectively on every rank, and all ranks must compute identical maps)
and fast enough for the paper's 50 ms placement budget.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import inspect
import time
from typing import Callable, Dict, Iterator, Optional

import numpy as np

from .context import PlacementContext

__all__ = [
    "PlacementPolicy",
    "PlacementResult",
    "PolicyArgumentError",
    "register_policy",
    "get_policy",
    "available_policies",
    "validate_assignment",
]


@dataclasses.dataclass(frozen=True)
class PlacementResult:
    """Assignment plus bookkeeping from one placement computation.

    Attributes
    ----------
    assignment:
        ``(n,)`` int64 array mapping block ID → rank.
    policy:
        Name of the policy that produced it.
    elapsed_s:
        Wall-clock placement computation time (the quantity Fig. 7c
        reports and the 50 ms budget constrains).
    """

    assignment: np.ndarray
    policy: str
    elapsed_s: float

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.assignment, dtype=np.int64)
        object.__setattr__(self, "assignment", arr)

    @property
    def n_blocks(self) -> int:
        return int(self.assignment.shape[0])

    def loads(self, costs: np.ndarray, n_ranks: int) -> np.ndarray:
        """Per-rank total cost under this assignment."""
        return np.bincount(self.assignment, weights=costs, minlength=n_ranks)


def validate_assignment(assignment: np.ndarray, n_blocks: int, n_ranks: int) -> None:
    """Raise ``ValueError`` if an assignment is malformed.

    Checks shape, dtype domain, and that rank IDs are within range.  An
    empty rank is legal (more ranks than blocks happens transiently right
    after startup — Table I starts at exactly one block per rank).
    """
    arr = np.asarray(assignment)
    if arr.shape != (n_blocks,):
        raise ValueError(f"assignment shape {arr.shape} != ({n_blocks},)")
    if n_blocks == 0:
        return
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"assignment dtype {arr.dtype} is not integral")
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= n_ranks:
        raise ValueError(f"rank ids [{lo}, {hi}] outside [0, {n_ranks})")


@functools.lru_cache(maxsize=None)
def _compute_accepts_ctx(cls: type) -> bool:
    """Whether ``cls.compute`` takes a ``ctx`` keyword.

    Pre-migration subclasses (two-argument ``compute``) exist in the
    wild; :meth:`PlacementPolicy.place` only forwards a context to
    implementations that declare one, so those keep working untouched.
    """
    try:
        params = inspect.signature(cls.compute).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    if "ctx" in params:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())


class PlacementPolicy(abc.ABC):
    """Base class for placement policies.

    Subclasses implement :meth:`compute`; :meth:`place` wraps it with
    input validation, timing, and output validation.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        """Return the block→rank assignment for the given costs.

        ``ctx`` is ``None`` for homogeneous clusters; hetero-aware
        policies read per-rank speeds/NIC tiers from it, everyone else
        may ignore it (heterogeneity then simply goes unexploited).
        """

    def place(
        self,
        costs: np.ndarray,
        n_ranks: Optional[int] = None,
        ctx: Optional[PlacementContext] = None,
    ) -> PlacementResult:
        """Validated, timed placement computation.

        ``n_ranks`` may be omitted when ``ctx`` is given (it is then
        ``ctx.n_ranks``); passing both requires them to agree.  With
        ``ctx=None`` the call path is byte-for-byte the historical one.
        """
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if costs.ndim != 1:
            raise ValueError(f"costs must be 1-D, got shape {costs.shape}")
        if costs.size and not np.isfinite(costs).all():
            raise ValueError("block costs must be finite (no NaN/inf)")
        if costs.size and costs.min() < 0:
            raise ValueError("block costs must be non-negative")
        if ctx is not None:
            if n_ranks is None:
                n_ranks = ctx.n_ranks
            elif n_ranks != ctx.n_ranks:
                raise ValueError(
                    f"n_ranks={n_ranks} disagrees with ctx.n_ranks={ctx.n_ranks}"
                )
        if n_ranks is None:
            raise ValueError("either n_ranks or ctx must be provided")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        t0 = time.perf_counter()
        if ctx is not None and _compute_accepts_ctx(type(self)):
            assignment = self.compute(costs, n_ranks, ctx=ctx)
        else:
            assignment = self.compute(costs, n_ranks)
        elapsed = time.perf_counter() - t0
        validate_assignment(assignment, costs.shape[0], n_ranks)
        return PlacementResult(
            assignment=np.asarray(assignment, dtype=np.int64),
            policy=self.name,
            elapsed_s=elapsed,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], PlacementPolicy]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator registering a zero-arg-constructible policy."""

    def deco(cls: type) -> type:
        if not issubclass(cls, PlacementPolicy):
            raise TypeError(f"{cls} is not a PlacementPolicy")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


class PolicyArgumentError(TypeError):
    """A policy was requested with keyword arguments it does not take.

    Carries the policy name, the offending argument names, and the
    constructor's accepted parameters — so sweep front ends (CLI flags,
    service JSON params) can report exactly what to fix instead of
    surfacing an opaque ``TypeError`` from deep inside a constructor.
    """

    def __init__(self, policy: str, unexpected, accepted) -> None:
        self.policy = str(policy)
        self.unexpected = tuple(unexpected)
        self.accepted = tuple(accepted)
        noun = "argument" if len(self.unexpected) == 1 else "arguments"
        super().__init__(
            f"policy {self.policy!r} got unexpected keyword {noun} "
            f"{', '.join(repr(a) for a in self.unexpected)}; "
            f"accepted: {', '.join(self.accepted) or '(none)'}"
        )


def _construct_policy(name, ctor, kwargs, reserved=()):
    """Build a policy, converting bad kwargs into PolicyArgumentError.

    ``reserved`` names are supplied by the shorthand itself (e.g. the
    ``:X`` suffix of ``cplx:X`` fixes ``x_percent``) and therefore count
    as unexpected when passed explicitly too.
    """
    accepted: tuple = ()
    try:
        sig = inspect.signature(ctor)
    except (TypeError, ValueError):
        sig = None
    if sig is not None:
        params = sig.parameters
        if not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        ):
            accepted = tuple(
                n for n, p in params.items()
                if n != "self"
                and n not in reserved
                and p.kind in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY,
                )
            )
            unexpected = sorted(set(kwargs) - set(accepted))
            if unexpected:
                raise PolicyArgumentError(name, unexpected, accepted)
    return ctor(**kwargs)


def get_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a registered policy by name.

    ``cplx:<X>`` is accepted as shorthand for ``CPLX(x_percent=X)``, so
    the evaluation sweeps can be driven by strings (``cplx:50`` == CPL50);
    ``hetero-cplx:<X>`` is the capacity-aware analogue.  ``guarded``
    builds the default budgeted fallback chain
    (:class:`repro.resilience.guard.GuardedPolicy`); all are resolved
    lazily to keep import cycles out of the registry.  Unexpected keyword
    arguments raise :class:`PolicyArgumentError` naming the policy and
    its accepted parameters.
    """
    if name.startswith("cplx:"):
        from .cplx import CPLX

        x = float(name.split(":", 1)[1])
        return _construct_policy(
            name, functools.partial(CPLX, x_percent=x), kwargs,
            reserved=("x_percent",),
        )
    if name.startswith("hetero-cplx:"):
        from .hetero import HeteroCPLX

        x = float(name.split(":", 1)[1])
        return _construct_policy(
            name, functools.partial(HeteroCPLX, x_percent=x), kwargs,
            reserved=("x_percent",),
        )
    if name == "guarded":
        from ..resilience.guard import GuardedPolicy

        return _construct_policy(name, GuardedPolicy, kwargs)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_REGISTRY)}") from None
    return _construct_policy(name, factory, kwargs)


def available_policies() -> Iterator[str]:
    """Names of all registered policies."""
    return iter(sorted(_REGISTRY))
