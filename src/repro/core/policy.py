"""Placement policy protocol and registry.

A *placement policy* maps SFC-ordered block costs to a block→rank
assignment (paper §V).  Policies receive:

* ``costs`` — per-block compute cost in block-ID (SFC) order.  The
  baseline infrastructure historically fixes these to 1; the paper's
  change #1 populates them from telemetry (§V-A3).
* ``n_ranks`` — number of simulation ranks.

and return an ``(n,)`` int64 array ``assignment`` with
``assignment[block_id] = rank``.

Policies must be deterministic given their inputs (redistribution runs
collectively on every rank, and all ranks must compute identical maps)
and fast enough for the paper's 50 ms placement budget.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Callable, Dict, Iterator

import numpy as np

__all__ = [
    "PlacementPolicy",
    "PlacementResult",
    "register_policy",
    "get_policy",
    "available_policies",
    "validate_assignment",
]


@dataclasses.dataclass(frozen=True)
class PlacementResult:
    """Assignment plus bookkeeping from one placement computation.

    Attributes
    ----------
    assignment:
        ``(n,)`` int64 array mapping block ID → rank.
    policy:
        Name of the policy that produced it.
    elapsed_s:
        Wall-clock placement computation time (the quantity Fig. 7c
        reports and the 50 ms budget constrains).
    """

    assignment: np.ndarray
    policy: str
    elapsed_s: float

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.assignment, dtype=np.int64)
        object.__setattr__(self, "assignment", arr)

    @property
    def n_blocks(self) -> int:
        return int(self.assignment.shape[0])

    def loads(self, costs: np.ndarray, n_ranks: int) -> np.ndarray:
        """Per-rank total cost under this assignment."""
        return np.bincount(self.assignment, weights=costs, minlength=n_ranks)


def validate_assignment(assignment: np.ndarray, n_blocks: int, n_ranks: int) -> None:
    """Raise ``ValueError`` if an assignment is malformed.

    Checks shape, dtype domain, and that rank IDs are within range.  An
    empty rank is legal (more ranks than blocks happens transiently right
    after startup — Table I starts at exactly one block per rank).
    """
    arr = np.asarray(assignment)
    if arr.shape != (n_blocks,):
        raise ValueError(f"assignment shape {arr.shape} != ({n_blocks},)")
    if n_blocks == 0:
        return
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"assignment dtype {arr.dtype} is not integral")
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= n_ranks:
        raise ValueError(f"rank ids [{lo}, {hi}] outside [0, {n_ranks})")


class PlacementPolicy(abc.ABC):
    """Base class for placement policies.

    Subclasses implement :meth:`compute`; :meth:`place` wraps it with
    input validation, timing, and output validation.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def compute(self, costs: np.ndarray, n_ranks: int) -> np.ndarray:
        """Return the block→rank assignment for the given costs."""

    def place(self, costs: np.ndarray, n_ranks: int) -> PlacementResult:
        """Validated, timed placement computation."""
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if costs.ndim != 1:
            raise ValueError(f"costs must be 1-D, got shape {costs.shape}")
        if costs.size and not np.isfinite(costs).all():
            raise ValueError("block costs must be finite (no NaN/inf)")
        if costs.size and costs.min() < 0:
            raise ValueError("block costs must be non-negative")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        t0 = time.perf_counter()
        assignment = self.compute(costs, n_ranks)
        elapsed = time.perf_counter() - t0
        validate_assignment(assignment, costs.shape[0], n_ranks)
        return PlacementResult(
            assignment=np.asarray(assignment, dtype=np.int64),
            policy=self.name,
            elapsed_s=elapsed,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], PlacementPolicy]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator registering a zero-arg-constructible policy."""

    def deco(cls: type) -> type:
        if not issubclass(cls, PlacementPolicy):
            raise TypeError(f"{cls} is not a PlacementPolicy")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a registered policy by name.

    ``cplx:<X>`` is accepted as shorthand for ``CPLX(x_percent=X)``, so
    the evaluation sweeps can be driven by strings (``cplx:50`` == CPL50).
    ``guarded`` builds the default budgeted fallback chain
    (:class:`repro.resilience.guard.GuardedPolicy`); both are resolved
    lazily to keep import cycles out of the registry.
    """
    if name.startswith("cplx:"):
        from .cplx import CPLX

        return CPLX(x_percent=float(name.split(":", 1)[1]), **kwargs)
    if name == "guarded":
        from ..resilience.guard import GuardedPolicy

        return GuardedPolicy(**kwargs)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_policies() -> Iterator[str]:
    """Names of all registered policies."""
    return iter(sorted(_REGISTRY))
