"""Contiguous-DP (CDP) placement (paper §V-C).

CDP keeps the baseline's locality (contiguous SFC ranges per rank) but
chooses the *range boundaries* to minimize makespan.  Formally: given
block costs ``w_1..w_n`` in SFC order, partition them into ``r``
contiguous segments minimizing the maximum segment sum.

Three solvers are provided:

* :func:`cdp_restricted` — the paper's production variant: only chunk
  sizes ``ceil(n/r)`` and ``floor(n/r)`` are considered, giving an
  ``O(n·r)``-bounded DP (actually ``O(r · (n mod r))``) that is optimal
  *within the explored chunk sizes*.
* :func:`cdp_full` — the unrestricted ``O(n^2 r)`` DP; exact but too slow
  for large meshes.  Kept for the ablation of the restriction.
* :func:`cdp_optimal_makespan` — exact optimal contiguous makespan via
  parametric binary search with a greedy feasibility check,
  ``O(n log(W/eps))``; used to verify both DPs in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .baseline import assignment_from_counts
from .context import PlacementContext
from .policy import PlacementPolicy, register_policy

__all__ = [
    "CDPPolicy",
    "CDPFullPolicy",
    "cdp_restricted",
    "cdp_full",
    "cdp_optimal_makespan",
    "counts_makespan",
]


def counts_makespan(costs: np.ndarray, counts: np.ndarray) -> float:
    """Makespan (max segment cost) of a contiguous split given counts."""
    counts = np.asarray(counts, dtype=np.int64)
    if int(counts.sum()) != costs.shape[0]:
        raise ValueError("counts do not sum to the number of blocks")
    bounds = np.concatenate([[0], np.cumsum(counts)])
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    seg = prefix[bounds[1:]] - prefix[bounds[:-1]]
    return float(seg.max()) if seg.size else 0.0


def cdp_restricted(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Restricted CDP: per-rank counts limited to {floor(n/r), ceil(n/r)}.

    Returns per-rank contiguous *counts* (not an assignment).  The DP
    state is (ranks placed, ceil-sized segments used); since the start
    offset of rank ``k`` with ``j`` ceil segments used is ``k*f + j``,
    the table is ``(r+1) x (e+1)`` where ``e = n mod r`` — hence the
    ``O(nr)`` bound quoted in the paper.
    """
    n = int(costs.shape[0])
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    f, e = divmod(n, n_ranks)
    prefix = np.concatenate([[0.0], np.cumsum(costs, dtype=np.float64)])
    if e == 0:
        # Single legal configuration: every rank takes exactly f blocks.
        return np.full(n_ranks, f, dtype=np.int64)

    INF = np.inf
    # dp[j] = best makespan after current k ranks with j ceil segments used
    dp = np.full(e + 1, INF, dtype=np.float64)
    dp[0] = 0.0
    # choice[k, j] = 1 if rank k-1 took a ceil segment on the best path
    choice = np.zeros((n_ranks + 1, e + 1), dtype=np.int8)
    js = np.arange(e + 1)
    for k in range(1, n_ranks + 1):
        # Feasibility window for j after k ranks.
        j_lo = max(0, e - (n_ranks - k))
        j_hi = min(e, k)
        # Option A: rank k-1 takes a floor-size segment; state j unchanged.
        start_f = (k - 1) * f + js  # start index given j ceils used before
        seg_f = prefix[start_f + f] - prefix[start_f] if f > 0 else np.zeros(e + 1)
        cand_f = np.maximum(dp, seg_f)
        # Option B: rank k-1 takes a ceil segment; state j-1 -> j.
        cand_c = np.full(e + 1, INF)
        if e >= 1:
            start_c = (k - 1) * f + js[:-1]  # previous state had j-1 = js[:-1]
            seg_c = prefix[start_c + f + 1] - prefix[start_c]
            cand_c[1:] = np.maximum(dp[:-1], seg_c)
        take_ceil = cand_c < cand_f
        ndp = np.where(take_ceil, cand_c, cand_f)
        # Mask states outside the feasibility window.
        invalid = (js < j_lo) | (js > j_hi)
        ndp[invalid] = INF
        choice[k] = take_ceil & ~invalid
        dp = ndp

    # Reconstruct counts from the choice table.
    counts = np.empty(n_ranks, dtype=np.int64)
    j = e
    for k in range(n_ranks, 0, -1):
        if choice[k, j]:
            counts[k - 1] = f + 1
            j -= 1
        else:
            counts[k - 1] = f
    assert j == 0, "CDP reconstruction failed"
    return counts


def cdp_full(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Unrestricted contiguous-partition DP; returns per-rank counts.

    ``DP[i][k] = min over j < i of max(DP[j][k-1], W[i] - W[j])`` — the
    exact recurrence from the paper (§V-C).  O(n^2 r); use only for
    small instances (tests, the restriction ablation).
    """
    n = int(costs.shape[0])
    prefix = np.concatenate([[0.0], np.cumsum(costs, dtype=np.float64)])
    INF = np.inf
    dp = np.full((n + 1, n_ranks + 1), INF, dtype=np.float64)
    cut = np.zeros((n + 1, n_ranks + 1), dtype=np.int64)
    dp[0, 0] = 0.0
    for k in range(1, n_ranks + 1):
        for i in range(0, n + 1):
            # segment (j, i] assigned to rank k-1 (may be empty: j == i)
            seg = prefix[i] - prefix[: i + 1]  # seg[j] = W[i] - W[j]
            cand = np.maximum(dp[: i + 1, k - 1], seg)
            j = int(np.argmin(cand))
            dp[i, k] = cand[j]
            cut[i, k] = j
    counts = np.empty(n_ranks, dtype=np.int64)
    i = n
    for k in range(n_ranks, 0, -1):
        j = int(cut[i, k])
        counts[k - 1] = i - j
        i = j
    assert i == 0, "full CDP reconstruction failed"
    return counts


def cdp_optimal_makespan(costs: np.ndarray, n_ranks: int) -> float:
    """Exact optimal contiguous makespan (value only), via binary search.

    Greedy feasibility: a threshold ``T`` is achievable iff packing blocks
    left-to-right, cutting just before the segment would exceed ``T``,
    uses at most ``r`` segments.  Optimal ``T`` is bracketed between
    ``max(max_cost, total/r)`` and ``total``; we binary-search to within
    machine precision of the answer.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = int(costs.shape[0])
    if n == 0:
        return 0.0
    total = float(costs.sum())
    lo = max(float(costs.max()), total / n_ranks)
    hi = total

    def feasible(T: float) -> bool:
        segments = 1
        acc = 0.0
        for w in costs:
            if acc + w > T + 1e-12 * max(1.0, T):
                segments += 1
                acc = w
                if segments > n_ranks:
                    return False
            else:
                acc += w
        return True

    if feasible(lo):
        return lo
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return hi


@register_policy("cdp")
class CDPPolicy(PlacementPolicy):
    """Locality-preserving load balance: restricted contiguous DP (CPL0 core)."""

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        return assignment_from_counts(cdp_restricted(costs, n_ranks))


@register_policy("cdp-full")
class CDPFullPolicy(PlacementPolicy):
    """Unrestricted contiguous DP (ablation arm; O(n^2 r))."""

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        return assignment_from_counts(cdp_full(costs, n_ranks))
