"""Placement quality metrics: load balance, locality, migration cost.

The paper's two optimization dimensions (§V) are *compute load balance*
(makespan / per-rank load variance) and *communication locality* (which
neighbor messages stay on-rank via ``memcpy``, on-node via shared memory,
or cross nodes via the fabric — Fig. 6c).  This module computes both
families from an assignment plus the mesh neighbor graph and the
rank→node topology, entirely vectorized.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..mesh.neighbors import NeighborGraph, NeighborKind
from .context import REFERENCE_NIC_GBPS, PlacementContext

__all__ = [
    "LoadStats",
    "MessageStats",
    "load_stats",
    "message_stats",
    "normalized_makespan",
    "migration_volume",
    "contiguity_fraction",
    "DEFAULT_MESSAGE_WEIGHTS",
]

#: Relative boundary-exchange volume per contact class.  Faces exchange
#: a cells-squared slab, edges a cells-length pencil, vertices a corner —
#: for 16^3 blocks with 2 ghost layers: 16*16*2, 16*2*2, 2^3 cells.
DEFAULT_MESSAGE_WEIGHTS: Dict[NeighborKind, float] = {
    NeighborKind.FACE: 512.0,
    NeighborKind.EDGE: 64.0,
    NeighborKind.VERTEX: 8.0,
}


@dataclasses.dataclass(frozen=True)
class LoadStats:
    """Per-rank compute load summary under an assignment.

    With a heterogeneous context, "load" means *completion time*
    (raw load divided by the rank's speed) — the straggler-relevant
    quantity on mixed hardware.  Homogeneous calls (``ctx=None``) keep
    the historical raw-load semantics bit for bit.
    """

    makespan: float          #: max per-rank load (the straggler)
    mean: float              #: average per-rank load
    imbalance: float         #: makespan / mean (1.0 == perfect)
    cv: float                #: coefficient of variation of rank loads
    min_load: float
    loads: np.ndarray        #: per-rank loads


def load_stats(
    costs: np.ndarray,
    assignment: np.ndarray,
    n_ranks: int,
    ctx: Optional[PlacementContext] = None,
) -> LoadStats:
    """Compute :class:`LoadStats` for an assignment.

    ``ctx`` enables capacity weighting: per-rank loads become
    ``load / rank_speed`` (completion times), so the makespan is the
    time the slowest rank actually finishes.
    """
    loads = np.bincount(assignment, weights=costs, minlength=n_ranks).astype(np.float64)
    if ctx is not None:
        if ctx.n_ranks != n_ranks:
            raise ValueError(
                f"context describes {ctx.n_ranks} ranks, stats asked for {n_ranks}"
            )
        loads = loads / ctx.rank_speed
    mean = float(loads.mean()) if n_ranks else 0.0
    mk = float(loads.max()) if n_ranks else 0.0
    cv = float(loads.std() / mean) if mean > 0 else 0.0
    return LoadStats(
        makespan=mk,
        mean=mean,
        imbalance=mk / mean if mean > 0 else 1.0,
        cv=cv,
        min_load=float(loads.min()) if n_ranks else 0.0,
        loads=loads,
    )


def normalized_makespan(
    costs: np.ndarray,
    assignment: np.ndarray,
    n_ranks: int,
    ctx: Optional[PlacementContext] = None,
) -> float:
    """Makespan divided by the area lower bound (Fig. 7b's y-axis).

    Homogeneous: ``max load / (total / r)``.  With a context, both sides
    are capacity-weighted: completion-time makespan over
    ``total / sum(speeds)`` — the ``Q || C_max`` area bound, so 1.0 still
    means "perfectly balanced for this hardware mix".
    """
    total = float(np.asarray(costs).sum())
    if total <= 0:
        return 1.0
    if ctx is None:
        return load_stats(costs, assignment, n_ranks).makespan / (total / n_ranks)
    mk = load_stats(costs, assignment, n_ranks, ctx=ctx).makespan
    return mk / (total / ctx.total_capacity())


@dataclasses.dataclass(frozen=True)
class MessageStats:
    """Boundary-exchange message classification under an assignment.

    ``intra_rank`` pairs never hit MPI (serviced by ``memcpy``);
    ``local`` pairs cross ranks on the same node (shared-memory path);
    ``remote`` pairs cross nodes (fabric path).  Counts are per
    *undirected neighbor pair per exchange round*; volumes apply the
    per-kind message weights (each pair exchanges in both directions,
    which scales all entries by the same factor and is therefore omitted).
    """

    intra_rank: int
    local: int
    remote: int
    intra_rank_volume: float
    local_volume: float
    remote_volume: float
    #: remote volume weighted by NIC tier: each cross-node edge counts
    #: ``volume * (reference_nic / link_nic)``, where the link NIC is the
    #: slower endpoint's tier — so traffic over slow NICs inflates.
    #: Equals ``remote_volume`` on a uniform reference fabric; 0.0 when
    #: no context was supplied (homogeneous calls are unchanged).
    remote_tier_volume: float = 0.0

    @property
    def mpi_visible(self) -> int:
        """Messages actually issued through MPI (local + remote)."""
        return self.local + self.remote

    @property
    def total(self) -> int:
        return self.intra_rank + self.local + self.remote

    @property
    def remote_fraction(self) -> float:
        """Fraction of MPI-visible messages crossing nodes (Fig. 6c's 64%)."""
        vis = self.mpi_visible
        return self.remote / vis if vis else 0.0

    @property
    def total_volume(self) -> float:
        return self.intra_rank_volume + self.local_volume + self.remote_volume


def message_stats(
    graph: NeighborGraph,
    assignment: np.ndarray,
    ranks_per_node: int,
    weights: Dict[NeighborKind, float] | None = None,
    ctx: Optional[PlacementContext] = None,
) -> MessageStats:
    """Classify every neighbor pair as intra-rank / local / remote.

    Parameters
    ----------
    graph:
        Mesh neighbor graph (blocks in block-ID order).
    assignment:
        Block→rank map in block-ID order.
    ranks_per_node:
        Ranks packed per node; node of rank ``r`` is ``r // ranks_per_node``
        (the paper's clusters pack 16 ranks per 16-core node).
    ctx:
        Optional :class:`~repro.core.context.PlacementContext`; when
        given, ``remote_tier_volume`` weights each cross-node edge by the
        reference-to-link NIC ratio (slower endpoint governs the link).
    """
    if ranks_per_node < 1:
        raise ValueError("ranks_per_node must be >= 1")
    assignment = np.asarray(assignment, dtype=np.int64)
    if graph.n_blocks != assignment.shape[0]:
        raise ValueError(
            f"assignment covers {assignment.shape[0]} blocks, graph has {graph.n_blocks}"
        )
    w = graph.edge_weights(weights or DEFAULT_MESSAGE_WEIGHTS)
    if graph.n_edges == 0:
        return MessageStats(0, 0, 0, 0.0, 0.0, 0.0)
    ra = assignment[graph.edges[:, 0]]
    rb = assignment[graph.edges[:, 1]]
    same_rank = ra == rb
    same_node = (ra // ranks_per_node) == (rb // ranks_per_node)
    local = ~same_rank & same_node
    remote = ~same_node
    remote_tier = 0.0
    if ctx is not None and remote.any():
        link = np.minimum(ctx.rank_nic_gbps[ra[remote]], ctx.rank_nic_gbps[rb[remote]])
        remote_tier = float((w[remote] * (REFERENCE_NIC_GBPS / link)).sum())
    return MessageStats(
        intra_rank=int(same_rank.sum()),
        local=int(local.sum()),
        remote=int(remote.sum()),
        intra_rank_volume=float(w[same_rank].sum()),
        local_volume=float(w[local].sum()),
        remote_volume=float(w[remote].sum()),
        remote_tier_volume=remote_tier,
    )


def migration_volume(
    old_assignment: np.ndarray,
    new_assignment: np.ndarray,
    block_bytes: float = 1.0,
) -> float:
    """Data volume moved by a redistribution (blocks that change rank).

    Every block has the same cell count regardless of level (§II-B), so
    volume is simply ``moved_blocks * block_bytes``.
    """
    old = np.asarray(old_assignment)
    new = np.asarray(new_assignment)
    if old.shape != new.shape:
        raise ValueError("assignments must have equal length to compare")
    return float((old != new).sum()) * block_bytes


def contiguity_fraction(assignment: np.ndarray) -> float:
    """Fraction of adjacent block-ID pairs kept on one rank.

    A cheap scalar locality proxy: 1.0 for baseline/CDP-style contiguous
    placements (minus the r-1 unavoidable boundaries), lower as LPT
    scatters the curve.
    """
    arr = np.asarray(assignment)
    if arr.shape[0] < 2:
        return 1.0
    return float((arr[1:] == arr[:-1]).mean())
