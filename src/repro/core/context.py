"""PlacementContext: the per-rank hardware description policies see.

The paper's placement study assumes identical ranks; ROADMAP item 2
(and Parthenon-VIBE / Helix in PAPERS.md) asks what happens on *mixed*
hardware.  A :class:`PlacementContext` carries exactly the per-rank
capabilities a placement policy may exploit:

* ``rank_speed`` — relative compute throughput (1.0 = the reference
  node; 2.0 finishes a block in half the time).  This is *hardware
  class*, not health: transient fault slowdowns
  (``Cluster.node_speed_factor``) stay in the simnet layer and are
  deliberately invisible to policies, which must not chase thermal
  noise.
* ``rank_nic_gbps`` — NIC tier of the rank's node (reference fabric is
  40 Gbps, the paper's QLogic IB).
* ``ranks_per_node`` — dense packing, for node-locality reasoning.

The context lives in :mod:`repro.core` (pure numpy, no simnet import)
so policies and metrics can depend on it without a layering cycle;
:meth:`repro.simnet.cluster.Cluster.placement_context` bridges the
simulated cluster into one.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["PlacementContext", "REFERENCE_NIC_GBPS"]

#: NIC tier of the reference hardware class (the paper's 40 Gbps QLogic
#: fabric).  Per-tier bandwidth scaling is relative to this.
REFERENCE_NIC_GBPS = 40.0


@dataclasses.dataclass(frozen=True)
class PlacementContext:
    """Per-rank hardware capabilities, in rank-ID order.

    Attributes
    ----------
    rank_speed:
        ``(n_ranks,)`` relative compute throughput per rank (> 0).
    rank_nic_gbps:
        ``(n_ranks,)`` NIC tier of each rank's node (> 0).
    ranks_per_node:
        Ranks packed per node; node of rank ``r`` is
        ``r // ranks_per_node``.
    """

    rank_speed: np.ndarray
    rank_nic_gbps: np.ndarray
    ranks_per_node: int = 16

    def __post_init__(self) -> None:
        speed = np.ascontiguousarray(self.rank_speed, dtype=np.float64)
        nic = np.ascontiguousarray(self.rank_nic_gbps, dtype=np.float64)
        if speed.ndim != 1 or speed.size < 1:
            raise ValueError(f"rank_speed must be 1-D and non-empty, got {speed.shape}")
        if nic.shape != speed.shape:
            raise ValueError(
                f"rank_nic_gbps shape {nic.shape} != rank_speed shape {speed.shape}"
            )
        for name, arr in (("rank_speed", speed), ("rank_nic_gbps", nic)):
            if not np.isfinite(arr).all():
                raise ValueError(f"{name} must be finite")
            if arr.min() <= 0:
                raise ValueError(f"{name} must be positive")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        object.__setattr__(self, "rank_speed", speed)
        object.__setattr__(self, "rank_nic_gbps", nic)

    # ------------------------------------------------------------------ #

    @classmethod
    def homogeneous(
        cls,
        n_ranks: int,
        ranks_per_node: int = 16,
        speed: float = 1.0,
        nic_gbps: float = REFERENCE_NIC_GBPS,
    ) -> "PlacementContext":
        """A uniform context (every rank identical) — the paper's regime."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        return cls(
            rank_speed=np.full(n_ranks, float(speed)),
            rank_nic_gbps=np.full(n_ranks, float(nic_gbps)),
            ranks_per_node=ranks_per_node,
        )

    # ------------------------------------------------------------------ #

    @property
    def n_ranks(self) -> int:
        return int(self.rank_speed.shape[0])

    @property
    def uniform_speed(self) -> bool:
        """True when every rank has the same compute throughput."""
        return float(self.rank_speed.min()) == float(self.rank_speed.max())

    @property
    def uniform_nic(self) -> bool:
        return float(self.rank_nic_gbps.min()) == float(self.rank_nic_gbps.max())

    @property
    def is_uniform(self) -> bool:
        """True when the cluster is effectively homogeneous."""
        return self.uniform_speed and self.uniform_nic

    def capacity(self) -> np.ndarray:
        """Per-rank throughput (alias of ``rank_speed``); a rank with
        load ``L`` finishes in ``L / capacity`` time units."""
        return self.rank_speed

    def total_capacity(self) -> float:
        """Sum of per-rank throughputs — the hetero area-bound divisor
        (``Q || C_max`` analogue of ``n_ranks``)."""
        return float(self.rank_speed.sum())

    def node_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        return np.asarray(ranks) // self.ranks_per_node

    def __repr__(self) -> str:  # arrays are noisy; summarize
        return (
            f"PlacementContext(n_ranks={self.n_ranks}, "
            f"speed=[{self.rank_speed.min():g}, {self.rank_speed.max():g}], "
            f"nic_gbps=[{self.rank_nic_gbps.min():g}, {self.rank_nic_gbps.max():g}], "
            f"ranks_per_node={self.ranks_per_node})"
        )
