"""Exact makespan reference solver (paper §V-B's Gurobi stand-in).

The paper validated LPT against a commercial ILP solver, which could not
improve on it within 200 s.  No solver is available here, so we provide
an exact branch-and-bound for ``P || C_max`` (identical parallel
machines, minimize makespan), usable on small instances, plus standard
lower bounds.  Benchmarks use it to reproduce the "LPT is near-optimal"
observation.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .lpt import lpt_assign

__all__ = [
    "BnBResult",
    "hetero_makespan_lower_bound",
    "makespan_lower_bound",
    "solve_hetero_makespan_bnb",
    "solve_makespan_bnb",
]


@dataclasses.dataclass(frozen=True)
class BnBResult:
    """Outcome of a branch-and-bound makespan solve."""

    assignment: np.ndarray
    makespan: float
    optimal: bool           #: proven optimal (search exhausted or hit LB)
    nodes_explored: int
    elapsed_s: float


def makespan_lower_bound(costs: np.ndarray, n_ranks: int) -> float:
    """Max of the three classic ``P || C_max`` lower bounds.

    ``total/r`` (area), ``max cost`` (longest job), and the pairing bound
    ``c[r] + c[r+1]`` (with ``r+1`` jobs at least one machine gets two of
    the largest ``r+1``; costs sorted descending, 0-indexed).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    lb = max(float(costs.sum()) / n_ranks, float(costs.max()))
    if costs.shape[0] > n_ranks:
        s = np.sort(costs)[::-1]
        lb = max(lb, float(s[n_ranks - 1] + s[n_ranks]))
    return lb


def solve_makespan_bnb(
    costs: np.ndarray,
    n_ranks: int,
    time_limit_s: float = 10.0,
    node_limit: int = 5_000_000,
) -> BnBResult:
    """Branch-and-bound for minimum makespan on identical ranks.

    Jobs are assigned in descending cost order; at each node we try each
    rank, pruning on (a) the incumbent, (b) the area bound over remaining
    work, and (c) machine symmetry (at most one empty rank is tried per
    level).  LPT seeds the incumbent, so the solver only ever improves
    on it — exactly how the paper used Gurobi.

    Returns a proven-optimal flag; on small instances (n <= ~24) the
    search completes well inside the default limits.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = int(costs.shape[0])
    t0 = time.perf_counter()
    lb = makespan_lower_bound(costs, n_ranks)

    # Incumbent from LPT.
    lpt = lpt_assign(costs, n_ranks)
    best_assign = lpt.copy()
    best = float(np.bincount(lpt, weights=costs, minlength=n_ranks).max())
    if n == 0 or best <= lb * (1 + 1e-12):
        return BnBResult(best_assign, best, True, 0, time.perf_counter() - t0)

    order = np.argsort(-costs, kind="stable")
    sorted_costs = costs[order]
    suffix = np.concatenate([np.cumsum(sorted_costs[::-1])[::-1], [0.0]])

    loads = np.zeros(n_ranks, dtype=np.float64)
    assign_sorted = np.full(n, -1, dtype=np.int64)
    state = {"best": best, "best_sorted": None, "nodes": 0, "complete": True}

    def dfs(depth: int) -> None:
        if state["nodes"] >= node_limit or time.perf_counter() - t0 > time_limit_s:
            state["complete"] = False
            return
        state["nodes"] += 1
        if depth == n:
            m = float(loads.max())
            if m < state["best"] - 1e-12:
                state["best"] = m
                state["best_sorted"] = assign_sorted.copy()
            return
        # Area bound: remaining work must fit under the incumbent.
        remaining = suffix[depth]
        if (loads.sum() + remaining) / n_ranks >= state["best"] - 1e-12 and float(
            loads.max()
        ) >= state["best"] - 1e-12:
            return
        w = float(sorted_costs[depth])
        tried_empty = False
        # Deterministic order: least-loaded ranks first tightens pruning.
        for r in np.argsort(loads, kind="stable"):
            r = int(r)
            if loads[r] == 0.0:
                if tried_empty:
                    continue  # empty ranks are interchangeable
                tried_empty = True
            if loads[r] + w >= state["best"] - 1e-12:
                continue
            loads[r] += w
            assign_sorted[depth] = r
            dfs(depth + 1)
            loads[r] -= w
            assign_sorted[depth] = -1
            if state["best"] <= lb * (1 + 1e-12):
                return  # matched the lower bound: proven optimal

    dfs(0)

    if state["best_sorted"] is not None:
        best = state["best"]
        best_assign = np.empty(n, dtype=np.int64)
        best_assign[order] = state["best_sorted"]
    optimal = state["complete"] or best <= lb * (1 + 1e-12)
    return BnBResult(
        best_assign, float(best), bool(optimal), state["nodes"], time.perf_counter() - t0
    )


# ---------------------------------------------------------------------- #
# Uniform machines (Q || C_max): the heterogeneous-cluster reference.
# ---------------------------------------------------------------------- #


def hetero_makespan_lower_bound(costs: np.ndarray, speeds: np.ndarray) -> float:
    """Lower bounds for ``Q || C_max`` (makespan = max load/speed).

    The area bound ``total / sum(speeds)`` (perfect capacity-weighted
    split) and the longest-job bound ``max(cost) / max(speed)`` (the
    largest block on the fastest rank).
    """
    costs = np.asarray(costs, dtype=np.float64)
    speeds = np.asarray(speeds, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    return max(
        float(costs.sum()) / float(speeds.sum()),
        float(costs.max()) / float(speeds.max()),
    )


def solve_hetero_makespan_bnb(
    costs: np.ndarray,
    speeds: np.ndarray,
    time_limit_s: float = float("inf"),
    node_limit: int = 2_000_000,
) -> BnBResult:
    """Branch-and-bound for minimum makespan on *uniform* machines.

    The ``Q || C_max`` generalization of :func:`solve_makespan_bnb`:
    rank ``r`` completes load ``L`` in ``L / speeds[r]``.  The incumbent
    is seeded by speed-scaled LPT
    (:func:`repro.core.hetero.hetero_lpt_assign`), so the solver only
    ever improves on the greedy — mirroring how the paper used Gurobi
    against plain LPT.  Empty-rank symmetry pruning applies *within* a
    speed class only (two idle ranks at different speeds are not
    interchangeable).

    The default has no wall-clock cut (``node_limit`` alone bounds the
    search), keeping results deterministic for a given input — required
    for a registered policy.
    """
    from .hetero import hetero_lpt_assign

    costs = np.asarray(costs, dtype=np.float64)
    speeds = np.asarray(speeds, dtype=np.float64)
    n = int(costs.shape[0])
    n_ranks = int(speeds.shape[0])
    if n_ranks < 1 or speeds.min() <= 0:
        raise ValueError("speeds must be a non-empty positive array")
    t0 = time.perf_counter()
    lb = hetero_makespan_lower_bound(costs, speeds)

    seed = hetero_lpt_assign(costs, speeds)
    best_assign = seed.copy()
    loads0 = np.bincount(seed, weights=costs, minlength=n_ranks)
    best = float((loads0 / speeds).max()) if n else 0.0
    if n == 0 or best <= lb * (1 + 1e-12):
        return BnBResult(best_assign, best, True, 0, time.perf_counter() - t0)

    order = np.argsort(-costs, kind="stable")
    sorted_costs = costs[order]
    suffix = np.concatenate([np.cumsum(sorted_costs[::-1])[::-1], [0.0]])
    total_speed = float(speeds.sum())

    loads = np.zeros(n_ranks, dtype=np.float64)
    assign_sorted = np.full(n, -1, dtype=np.int64)
    state = {"best": best, "best_sorted": None, "nodes": 0, "complete": True}

    def dfs(depth: int) -> None:
        if state["nodes"] >= node_limit or time.perf_counter() - t0 > time_limit_s:
            state["complete"] = False
            return
        state["nodes"] += 1
        completion = loads / speeds
        if depth == n:
            m = float(completion.max())
            if m < state["best"] - 1e-12:
                state["best"] = m
                state["best_sorted"] = assign_sorted.copy()
            return
        # Prune: both the capacity-area bound over remaining work and
        # the current straggler are lower bounds on the final makespan.
        area = (float(loads.sum()) + suffix[depth]) / total_speed
        if max(area, float(completion.max())) >= state["best"] - 1e-12:
            return
        w = float(sorted_costs[depth])
        tried_empty_speeds = set()
        # Deterministic order: earliest-finishing ranks first tightens
        # pruning (the Q||C_max analogue of least-loaded-first).
        for r in np.argsort(completion, kind="stable"):
            r = int(r)
            if loads[r] == 0.0:
                s = float(speeds[r])
                if s in tried_empty_speeds:
                    continue  # idle ranks of one speed class are interchangeable
                tried_empty_speeds.add(s)
            if (loads[r] + w) / speeds[r] >= state["best"] - 1e-12:
                continue
            loads[r] += w
            assign_sorted[depth] = r
            dfs(depth + 1)
            loads[r] -= w
            assign_sorted[depth] = -1
            if state["best"] <= lb * (1 + 1e-12):
                return  # matched the lower bound: proven optimal

    dfs(0)

    if state["best_sorted"] is not None:
        best = state["best"]
        best_assign = np.empty(n, dtype=np.int64)
        best_assign[order] = state["best_sorted"]
    optimal = state["complete"] or best <= lb * (1 + 1e-12)
    return BnBResult(
        best_assign, float(best), bool(optimal), state["nodes"], time.perf_counter() - t0
    )
