"""Hierarchically chunked CDP (paper §V-C, "Scaling CDP With Chunking").

At large rank counts the CDP table itself becomes the placement
bottleneck.  The paper's fix: split the SFC-ordered blocks into ``c``
contiguous chunks of approximately equal *cost*, hand each chunk a
contiguous subset of ranks, and solve CDP independently per chunk
(parallel-processable; at 4096 ranks with 512 ranks per chunk there are
8 chunks).  The result is not globally optimal but serves as CPLX's
intermediate stage, where the loss is immaterial.
"""

from __future__ import annotations

import concurrent.futures
from typing import List, Optional, Tuple

import numpy as np

from .baseline import assignment_from_counts
from .cdp import cdp_restricted
from .context import PlacementContext
from .policy import PlacementPolicy, register_policy

__all__ = ["ChunkedCDPPolicy", "split_chunks", "chunked_cdp_counts"]


def split_chunks(costs: np.ndarray, n_chunks: int) -> List[Tuple[int, int]]:
    """Split blocks into contiguous chunks of approximately equal cost.

    Returns ``[(start, stop), ...)`` half-open block-ID ranges.  Cut
    points are placed at the block boundaries closest to the ideal
    equal-cost quantiles of the prefix-sum; every chunk is non-empty when
    ``n >= n_chunks`` (cut points are deduplicated monotonically).
    """
    n = int(costs.shape[0])
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n_chunks = min(n_chunks, max(n, 1))
    prefix = np.concatenate([[0.0], np.cumsum(costs, dtype=np.float64)])
    total = prefix[-1]
    cuts = [0]
    for c in range(1, n_chunks):
        target = total * c / n_chunks
        j = int(np.searchsorted(prefix, target))
        j = min(max(j, cuts[-1] + 1), n - (n_chunks - c))
        cuts.append(j)
    cuts.append(n)
    return [(cuts[i], cuts[i + 1]) for i in range(n_chunks)]


def _rank_shares(chunk_costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Ranks per chunk, proportional to chunk cost (each chunk >= 1 rank).

    Largest-remainder apportionment keeps the shares summing to
    ``n_ranks`` while staying within one of the proportional ideal.
    """
    n_chunks = chunk_costs.shape[0]
    if n_ranks < n_chunks:
        raise ValueError(f"need >= {n_chunks} ranks for {n_chunks} chunks")
    total = float(chunk_costs.sum())
    if total <= 0:
        ideal = np.full(n_chunks, n_ranks / n_chunks)
    else:
        ideal = chunk_costs / total * n_ranks
    shares = np.maximum(np.floor(ideal).astype(np.int64), 1)
    # Largest remainders get the leftover ranks (deterministic tiebreak).
    while shares.sum() < n_ranks:
        rem = ideal - shares
        shares[int(np.argmax(rem))] += 1
    while shares.sum() > n_ranks:
        # Over-allocation can only come from the max(.., 1) floor.
        candidates = np.where(shares > 1)[0]
        rem = ideal[candidates] - shares[candidates]
        shares[candidates[int(np.argmin(rem))]] -= 1
    return shares


def chunked_cdp_counts(
    costs: np.ndarray,
    n_ranks: int,
    ranks_per_chunk: int = 512,
    parallel: bool = False,
) -> np.ndarray:
    """Per-rank contiguous counts from chunk-parallel restricted CDP.

    Parameters
    ----------
    ranks_per_chunk:
        Target chunk granularity in ranks (the paper uses 512).  The
        number of chunks is ``ceil(n_ranks / ranks_per_chunk)``.
    parallel:
        Solve chunks in a thread pool.  The DP is pure Python, so this
        mainly documents the parallel decomposition the paper exploits in
        C++; it is correct either way and defaults to serial.
    """
    n = int(costs.shape[0])
    if ranks_per_chunk < 1:
        raise ValueError("ranks_per_chunk must be >= 1")
    n_chunks = max(1, -(-n_ranks // ranks_per_chunk))
    n_chunks = min(n_chunks, n_ranks, max(n, 1))
    if n_chunks == 1:
        return cdp_restricted(costs, n_ranks)

    ranges = split_chunks(costs, n_chunks)
    chunk_costs = np.asarray(
        [float(costs[a:b].sum()) for a, b in ranges], dtype=np.float64
    )
    shares = _rank_shares(chunk_costs, n_ranks)

    def solve(i: int) -> np.ndarray:
        a, b = ranges[i]
        return cdp_restricted(costs[a:b], int(shares[i]))

    if parallel:
        with concurrent.futures.ThreadPoolExecutor() as pool:
            parts = list(pool.map(solve, range(n_chunks)))
    else:
        parts = [solve(i) for i in range(n_chunks)]
    return np.concatenate(parts)


@register_policy("cdp-chunked")
class ChunkedCDPPolicy(PlacementPolicy):
    """Chunk-parallel restricted CDP (the scalable CDP used inside CPLX)."""

    def __init__(self, ranks_per_chunk: int = 512, parallel: bool = False) -> None:
        self.ranks_per_chunk = ranks_per_chunk
        self.parallel = parallel

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        counts = chunked_cdp_counts(
            costs, n_ranks, ranks_per_chunk=self.ranks_per_chunk, parallel=self.parallel
        )
        return assignment_from_counts(counts)
