"""Heterogeneity-aware placement policies (ROADMAP item 2).

Three registered policies exploit a
:class:`~repro.core.context.PlacementContext`:

* ``hetero-lpt`` — speed-scaled LPT: each block goes to the rank that
  *finishes* it earliest (``(load + cost) / speed``), the natural
  ``Q || C_max`` greedy.  On uniform speeds this is exactly plain LPT.
* ``hetero-cplx`` / ``hetero-cplx:<X>`` — capacity-aware CPLX: a
  capacity-proportional contiguous split (fast ranks take longer SFC
  runs) followed by the usual X% rank rebalance, with rank "load"
  measured as completion time and the pooled blocks re-placed by
  speed-scaled LPT.  On uniform speeds it delegates to plain CPLX, bit
  for bit.
* ``hetero-ilp`` — exact branch-and-bound on uniform machines for small
  instances (the paper's Gurobi-reference arm generalized), falling
  back to speed-scaled LPT beyond ``max_exact_blocks``.

All three satisfy the homogeneous-invariance contract: with ``ctx=None``
or a uniform-speed context they return the same assignments as their
homogeneous counterparts (pinned by the parity suite in
``tests/test_policy_context.py``).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from .baseline import assignment_from_counts, contiguous_counts
from .context import PlacementContext
from .cplx import CPLX, select_rebalance_ranks
from .lpt import lpt_assign
from .policy import PlacementPolicy, register_policy

__all__ = [
    "HeteroCPLX",
    "HeteroILPPolicy",
    "HeteroLPTPolicy",
    "capacity_contiguous_counts",
    "hetero_lpt_assign",
]


def hetero_lpt_assign(
    costs: np.ndarray,
    speeds: np.ndarray,
    initial_loads: np.ndarray | None = None,
) -> np.ndarray:
    """Speed-scaled LPT: assign each block to its earliest-finishing rank.

    Blocks are taken in descending cost (stable, like plain LPT); rank
    ``r`` holding load ``L`` would finish a block of cost ``c`` at
    ``(L + c) / speeds[r]``, and the minimum wins.  Ties break toward
    the lowest rank ID.  One heap per distinct speed keeps the candidate
    set at ``k`` = number of speed classes: within a class the
    least-loaded rank is always the best representative, so the total
    cost is ``O(n (log r + k))``.

    With a single speed class this reduces *exactly* to
    :func:`repro.core.lpt.lpt_assign` (same heap discipline, same
    tie-breaks).
    """
    costs = np.asarray(costs, dtype=np.float64)
    speeds = np.asarray(speeds, dtype=np.float64)
    n = int(costs.shape[0])
    n_ranks = int(speeds.shape[0])
    if n_ranks < 1 or speeds.min() <= 0:
        raise ValueError("speeds must be a non-empty positive array")
    if initial_loads is None:
        loads = np.zeros(n_ranks, dtype=np.float64)
    else:
        loads = np.asarray(initial_loads, dtype=np.float64).copy()
        if loads.shape != (n_ranks,):
            raise ValueError(f"initial_loads shape {loads.shape} != ({n_ranks},)")
    # One (load, rank) heap per distinct speed; heap top is the class's
    # earliest-finishing candidate (monotone in load at fixed speed).
    class_speeds = np.unique(speeds)
    heaps = {}
    for s in class_speeds:
        s = float(s)
        heaps[s] = [(float(loads[r]), int(r)) for r in np.nonzero(speeds == s)[0]]
        heapq.heapify(heaps[s])
    order = np.argsort(-costs, kind="stable")
    assignment = np.empty(n, dtype=np.int64)
    for bid in order:
        c = float(costs[bid])
        best_key = None
        best_speed = None
        for s, heap in heaps.items():
            load, rank = heap[0]
            key = ((load + c) / s, rank)
            if best_key is None or key < best_key:
                best_key = key
                best_speed = s
        load, rank = heapq.heappop(heaps[best_speed])
        assignment[bid] = rank
        heapq.heappush(heaps[best_speed], (load + c, rank))
    return assignment


def capacity_contiguous_counts(costs: np.ndarray, speeds: np.ndarray) -> np.ndarray:
    """Contiguous SFC split with boundaries at capacity-weighted targets.

    Rank ``r``'s window ends where the cost prefix sum first reaches
    ``total * cumsum(speeds)[r] / sum(speeds)`` — the uniform-machines
    analogue of the baseline even split (which it equals, up to the
    baseline's block-count rounding, when all speeds match; the
    homogeneous code path never reaches here).  All-zero cost arrays
    fall back to the plain contiguous block-count split.
    """
    costs = np.asarray(costs, dtype=np.float64)
    speeds = np.asarray(speeds, dtype=np.float64)
    n = int(costs.shape[0])
    n_ranks = int(speeds.shape[0])
    if n == 0:
        return np.zeros(n_ranks, dtype=np.int64)
    prefix = np.cumsum(costs)
    total = float(prefix[-1])
    if total <= 0:
        return contiguous_counts(n, n_ranks)
    targets = total * (np.cumsum(speeds)[:-1] / float(speeds.sum()))
    bounds = np.searchsorted(prefix, targets, side="left")
    bounds = np.concatenate([[0], bounds, [n]])
    bounds = np.maximum.accumulate(bounds)
    return np.diff(bounds).astype(np.int64)


@register_policy("hetero-lpt")
class HeteroLPTPolicy(PlacementPolicy):
    """Speed-scaled LPT (``Q || C_max`` greedy); plain LPT when uniform."""

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        if ctx is None or ctx.uniform_speed:
            return lpt_assign(costs, n_ranks)
        _check_ctx(ctx, n_ranks)
        return hetero_lpt_assign(costs, ctx.rank_speed)


@register_policy("hetero-cplx")
class HeteroCPLX(PlacementPolicy):
    """Capacity-aware CPLX: hetero contiguous split + X% LPT rebalance.

    Parameters mirror :class:`~repro.core.cplx.CPLX`; with ``ctx=None``
    or uniform speeds the computation *is* plain CPLX (delegated, so
    homogeneous assignments are bit-identical to ``cplx:<X>``).
    """

    def __init__(
        self,
        x_percent: float = 50.0,
        ranks_per_chunk: int = 512,
        parallel: bool = False,
    ) -> None:
        self._inner = CPLX(
            x_percent=x_percent, ranks_per_chunk=ranks_per_chunk, parallel=parallel
        )
        self.x_percent = self._inner.x_percent
        self.ranks_per_chunk = ranks_per_chunk
        self.parallel = parallel

    @property
    def label(self) -> str:
        """Paper-style name with a hetero prefix, e.g. ``HCPL50``."""
        return "H" + self._inner.label

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        if ctx is None or ctx.uniform_speed:
            return self._inner.compute(costs, n_ranks)
        _check_ctx(ctx, n_ranks)
        speeds = ctx.rank_speed
        counts = capacity_contiguous_counts(costs, speeds)
        assignment = assignment_from_counts(counts)
        if self.x_percent == 0.0 or costs.shape[0] == 0 or n_ranks < 2:
            return assignment

        loads = np.bincount(assignment, weights=costs, minlength=n_ranks)
        # Rebalance selection ranks by *completion time*, not raw load:
        # a fast rank with a heavy window may be perfectly on schedule.
        ranks = select_rebalance_ranks(loads / speeds, self.x_percent)
        if ranks.shape[0] < 2:
            return assignment

        mask = np.isin(assignment, ranks)
        block_ids = np.nonzero(mask)[0]
        if block_ids.shape[0] == 0:
            return assignment
        local = hetero_lpt_assign(costs[block_ids], speeds[ranks])
        assignment = assignment.copy()
        assignment[block_ids] = ranks[local]
        return assignment

    def __repr__(self) -> str:
        return (
            f"HeteroCPLX(x_percent={self.x_percent}, "
            f"ranks_per_chunk={self.ranks_per_chunk})"
        )


@register_policy("hetero-ilp")
class HeteroILPPolicy(PlacementPolicy):
    """Exact small-instance arm: uniform-machines branch-and-bound.

    Solves ``Q || C_max`` exactly (deterministically: node-limited, no
    wall-clock cut) for instances up to ``max_exact_blocks`` blocks and
    falls back to speed-scaled LPT beyond that — the hetero analogue of
    the paper validating LPT against an ILP solver.  Speeds are
    normalized by their maximum before solving so uniform contexts are
    bit-identical to ``ctx=None`` regardless of the common speed value.
    """

    def __init__(
        self, max_exact_blocks: int = 18, node_limit: int = 200_000
    ) -> None:
        if max_exact_blocks < 0:
            raise ValueError("max_exact_blocks must be >= 0")
        if node_limit < 1:
            raise ValueError("node_limit must be >= 1")
        self.max_exact_blocks = int(max_exact_blocks)
        self.node_limit = int(node_limit)

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        if ctx is None:
            speeds = np.ones(n_ranks, dtype=np.float64)
        else:
            _check_ctx(ctx, n_ranks)
            speeds = ctx.rank_speed / ctx.rank_speed.max()
        if costs.shape[0] > self.max_exact_blocks:
            return hetero_lpt_assign(costs, speeds)
        from .ilp import solve_hetero_makespan_bnb

        return solve_hetero_makespan_bnb(
            costs, speeds, node_limit=self.node_limit
        ).assignment


def _check_ctx(ctx: PlacementContext, n_ranks: int) -> None:
    if ctx.n_ranks != n_ranks:
        raise ValueError(
            f"context describes {ctx.n_ranks} ranks, placement asked for {n_ranks}"
        )
