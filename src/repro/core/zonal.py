"""Zonal placement: parallel decomposition for very large scales.

Fig. 7c's conclusion: placement cost grows with scale and reaches
~100 ms at 128K ranks — "at the largest scales, zonal placement
architectures can be adopted ... dividing ranks into k zones to compute
placement independently and in parallel" (citing Zheng et al.'s
hierarchical load balancing).

:class:`ZonalPolicy` is the generic version of the chunking already
inside CDP: it splits the SFC-ordered blocks into cost-balanced zones,
gives each zone a proportional contiguous rank range, and runs *any*
inner policy per zone (optionally in a thread pool).  Zones contain
contiguous SFC ranges, so zonal placement preserves inter-zone locality
by construction; quality loss is confined to cross-zone rebalancing
opportunities, which the ablation bench quantifies.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from typing import Callable, Optional

import numpy as np

from .chunked import _rank_shares, split_chunks
from .context import PlacementContext
from .policy import PlacementPolicy, _compute_accepts_ctx, register_policy

__all__ = ["ZonalPolicy"]


def _slice_context(
    ctx: Optional[PlacementContext], lo: int, hi: int
) -> Optional[PlacementContext]:
    """The sub-context covering ranks ``[lo, hi)`` of a zone (or None)."""
    if ctx is None or hi <= lo:
        return None
    return dataclasses.replace(
        ctx,
        rank_speed=ctx.rank_speed[lo:hi],
        rank_nic_gbps=ctx.rank_nic_gbps[lo:hi],
    )


@register_policy("zonal")
class ZonalPolicy(PlacementPolicy):
    """Run an inner policy independently per cost-balanced zone.

    Parameters
    ----------
    inner_factory:
        Zero-arg callable constructing the per-zone policy (a fresh
        instance per zone keeps implementations free to carry state).
        Defaults to CPL50 — zonal CPLX is the paper's suggested
        configuration for extreme scales.
    ranks_per_zone:
        Zone granularity in ranks.
    parallel:
        Solve zones in a thread pool.
    """

    def __init__(
        self,
        inner_factory: Callable[[], PlacementPolicy] | None = None,
        ranks_per_zone: int = 1024,
        parallel: bool = False,
    ) -> None:
        if ranks_per_zone < 1:
            raise ValueError("ranks_per_zone must be >= 1")
        if inner_factory is None:
            from .cplx import CPLX

            inner_factory = lambda: CPLX(x_percent=50.0)  # noqa: E731
        self.inner_factory = inner_factory
        self.ranks_per_zone = ranks_per_zone
        self.parallel = parallel

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        n = int(costs.shape[0])
        n_zones = max(1, -(-n_ranks // self.ranks_per_zone))
        n_zones = min(n_zones, n_ranks, max(n, 1))
        if n_zones == 1:
            return self._solve_inner(costs, n_ranks, ctx)

        ranges = split_chunks(costs, n_zones)
        zone_costs = np.asarray(
            [float(costs[a:b].sum()) for a, b in ranges], dtype=np.float64
        )
        shares = _rank_shares(zone_costs, n_ranks)
        rank_offsets = np.concatenate([[0], np.cumsum(shares)])

        def solve(z: int) -> np.ndarray:
            a, b = ranges[z]
            lo, hi = int(rank_offsets[z]), int(rank_offsets[z] + shares[z])
            sub_ctx = _slice_context(ctx, lo, hi)
            local = self._solve_inner(costs[a:b], int(shares[z]), sub_ctx)
            return local + rank_offsets[z]

        if self.parallel:
            with concurrent.futures.ThreadPoolExecutor() as pool:
                parts = list(pool.map(solve, range(n_zones)))
        else:
            parts = [solve(z) for z in range(n_zones)]
        return np.concatenate(parts)

    def _solve_inner(
        self, costs: np.ndarray, n_ranks: int, ctx: Optional[PlacementContext]
    ) -> np.ndarray:
        """Run a fresh inner policy, forwarding the context when it can
        take one (pre-migration inner policies keep their 2-arg call)."""
        inner = self.inner_factory()
        if ctx is not None and _compute_accepts_ctx(type(inner)):
            return inner.compute(costs, n_ranks, ctx=ctx)
        return inner.compute(costs, n_ranks)
