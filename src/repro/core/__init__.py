"""Placement policies — the paper's primary contribution (§V).

Five policies share one interface (:class:`PlacementPolicy`):

* ``baseline`` — contiguous SFC block-count split (framework default)
* ``lpt`` — Longest-Processing-Time greedy (pure load balance, CPL100)
* ``cdp`` / ``cdp-full`` / ``cdp-chunked`` — contiguous DP variants
  (locality-preserving load balance, CPL0 core)
* ``cplx`` — the tunable hybrid; ``get_policy("cplx:50")`` == CPL50

plus an exact branch-and-bound reference solver and metrics for both
optimization dimensions (makespan, message locality).
"""

from .baseline import BaselinePolicy, assignment_from_counts, contiguous_counts
from .cdp import (
    CDPFullPolicy,
    CDPPolicy,
    cdp_full,
    cdp_optimal_makespan,
    cdp_restricted,
    counts_makespan,
)
from .chunked import ChunkedCDPPolicy, chunked_cdp_counts, split_chunks
from .context import REFERENCE_NIC_GBPS, PlacementContext
from .cplx import CPLX, select_rebalance_ranks
from .graphpart import GraphPartitionPolicy, edge_cut, greedy_graph_partition, refine_partition
from .hetero import (
    HeteroCPLX,
    HeteroILPPolicy,
    HeteroLPTPolicy,
    capacity_contiguous_counts,
    hetero_lpt_assign,
)
from .zonal import ZonalPolicy
from .ilp import (
    BnBResult,
    hetero_makespan_lower_bound,
    makespan_lower_bound,
    solve_hetero_makespan_bnb,
    solve_makespan_bnb,
)
from .lpt import LPTPolicy, lpt_assign, lpt_assign_subset
from .metrics import (
    DEFAULT_MESSAGE_WEIGHTS,
    LoadStats,
    MessageStats,
    contiguity_fraction,
    load_stats,
    message_stats,
    migration_volume,
    normalized_makespan,
)
from .policy import (
    PlacementPolicy,
    PlacementResult,
    PolicyArgumentError,
    available_policies,
    get_policy,
    register_policy,
    validate_assignment,
)
from .timing import PAPER_BUDGET_S, BudgetReport, measure_policy, within_budget

__all__ = [
    "BaselinePolicy",
    "BnBResult",
    "BudgetReport",
    "CDPFullPolicy",
    "CDPPolicy",
    "CPLX",
    "ChunkedCDPPolicy",
    "DEFAULT_MESSAGE_WEIGHTS",
    "GraphPartitionPolicy",
    "HeteroCPLX",
    "HeteroILPPolicy",
    "HeteroLPTPolicy",
    "ZonalPolicy",
    "edge_cut",
    "greedy_graph_partition",
    "refine_partition",
    "LPTPolicy",
    "LoadStats",
    "MessageStats",
    "PAPER_BUDGET_S",
    "PlacementContext",
    "PlacementPolicy",
    "PlacementResult",
    "PolicyArgumentError",
    "REFERENCE_NIC_GBPS",
    "assignment_from_counts",
    "available_policies",
    "capacity_contiguous_counts",
    "cdp_full",
    "cdp_optimal_makespan",
    "cdp_restricted",
    "chunked_cdp_counts",
    "contiguity_fraction",
    "contiguous_counts",
    "counts_makespan",
    "get_policy",
    "hetero_lpt_assign",
    "hetero_makespan_lower_bound",
    "load_stats",
    "lpt_assign",
    "lpt_assign_subset",
    "makespan_lower_bound",
    "measure_policy",
    "message_stats",
    "migration_volume",
    "normalized_makespan",
    "register_policy",
    "select_rebalance_ranks",
    "solve_hetero_makespan_bnb",
    "solve_makespan_bnb",
    "split_chunks",
    "validate_assignment",
    "within_budget",
]
