"""Longest-Processing-Time-first placement (paper §V-B).

Classic greedy makespan minimization (Graham 1969): sort blocks by cost
descending, assign each to the currently least-loaded rank.  Guarantees
makespan ≤ 4/3 · OPT − 1/(3r); in the paper's experiments a commercial
ILP solver could not beat it in 200 s.  LPT ignores communication
locality entirely — it is the ``X = 100`` endpoint of CPLX.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from .context import PlacementContext
from .policy import PlacementPolicy, register_policy

__all__ = ["LPTPolicy", "lpt_assign", "lpt_assign_subset"]


def lpt_assign(
    costs: np.ndarray,
    n_ranks: int,
    initial_loads: np.ndarray | None = None,
) -> np.ndarray:
    """LPT assignment of ``costs`` onto ``n_ranks`` ranks.

    Parameters
    ----------
    costs:
        Per-block cost, block-ID order.
    n_ranks:
        Number of ranks.
    initial_loads:
        Optional pre-existing per-rank load (used by CPLX when
        rebalancing a subset of ranks that keep some of their blocks).

    Notes
    -----
    Ties (equal loads) break toward the lowest rank ID, making the result
    deterministic.  Uses a binary heap of ``(load, rank)`` pairs —
    O(n log n + n log r) total, comfortably inside the 50 ms budget for
    AMR-scale inputs (~2 blocks per rank).
    """
    n = int(costs.shape[0])
    if initial_loads is None:
        heap = [(0.0, r) for r in range(n_ranks)]
    else:
        loads = np.asarray(initial_loads, dtype=np.float64)
        if loads.shape != (n_ranks,):
            raise ValueError(f"initial_loads shape {loads.shape} != ({n_ranks},)")
        heap = [(float(loads[r]), r) for r in range(n_ranks)]
    heapq.heapify(heap)
    order = np.argsort(-costs, kind="stable")
    assignment = np.empty(n, dtype=np.int64)
    for bid in order:
        load, rank = heapq.heappop(heap)
        assignment[bid] = rank
        heapq.heappush(heap, (load + float(costs[bid]), rank))
    return assignment


def lpt_assign_subset(
    costs: np.ndarray,
    block_ids: np.ndarray,
    rank_ids: np.ndarray,
    assignment: np.ndarray,
) -> np.ndarray:
    """Re-place a subset of blocks onto a subset of ranks with LPT.

    ``block_ids`` are re-assigned among ``rank_ids`` only; all other
    blocks keep their ranks (their loads are *not* seeded into the
    rebalance because CPLX removes every block of a selected rank before
    re-placing — see :mod:`repro.core.cplx`).  Returns a new assignment
    array; the input is not modified.
    """
    out = assignment.copy()
    sub_costs = costs[block_ids]
    local = lpt_assign(sub_costs, int(rank_ids.shape[0]))
    out[block_ids] = rank_ids[local]
    return out


@register_policy("lpt")
class LPTPolicy(PlacementPolicy):
    """Pure load balancing: LPT over measured block costs (CPL100).

    Homogeneous by construction (identical machines); the speed-aware
    variant is :class:`repro.core.hetero.HeteroLPTPolicy`.
    """

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        return lpt_assign(costs, n_ranks)
