"""CPLX: the hybrid locality/load-balance placement policy (paper §V-D).

Design principle: *it is easier to selectively break locality in a
contiguous placement than to restore locality in an arbitrary one.*
CPLX therefore:

1. computes an initial locality-preserving placement with (chunked) CDP;
2. sorts ranks by assigned load, descending;
3. selects ``X%`` of ranks from *both ends* of that list — the most
   overloaded and the most underloaded (rebalancing needs both sources
   and destinations);
4. pools every block owned by a selected rank and re-places the pool
   onto the selected ranks with LPT.

``X`` sweeps the tradeoff: ``X = 0`` (CPL0) is pure CDP;
``X = 100`` (CPL100) re-places everything, i.e. pure LPT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .baseline import assignment_from_counts
from .chunked import chunked_cdp_counts
from .context import PlacementContext
from .lpt import lpt_assign
from .policy import PlacementPolicy, register_policy

__all__ = ["CPLX", "select_rebalance_ranks"]


def select_rebalance_ranks(
    loads: np.ndarray, x_percent: float
) -> np.ndarray:
    """Rank IDs participating in the LPT rebalance for a given ``X``.

    ``round(X/100 * r)`` ranks are chosen, split evenly between the top
    (most loaded) and bottom (least loaded) of the load-sorted order,
    with the extra rank (odd selections) going to the overloaded side —
    the side that motivates the rebalance.  ``X > 0`` selects at least 2
    ranks (one source, one destination) whenever ``r >= 2``.

    Ties in load break toward lower rank IDs for determinism.
    """
    if not 0.0 <= x_percent <= 100.0:
        raise ValueError(f"X must be in [0, 100], got {x_percent}")
    r = int(loads.shape[0])
    k = int(round(x_percent / 100.0 * r))
    if x_percent > 0.0 and r >= 2:
        k = max(k, 2)
    k = min(k, r)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # Stable argsort on (-load) => descending load, rank-ID tiebreak.
    order = np.argsort(-loads, kind="stable")
    n_top = -(-k // 2)  # ceil
    n_bot = k // 2
    top = order[:n_top]
    bot = order[r - n_bot:] if n_bot else np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([top, bot])).astype(np.int64)


@register_policy("cplx")
class CPLX(PlacementPolicy):
    """Tunable hybrid of CDP (locality) and LPT (balance).

    Parameters
    ----------
    x_percent:
        Percentage of ranks undergoing LPT rebalance (``CPL<X>`` in the
        paper's notation, e.g. ``CPLX(x_percent=50)`` == CPL50).
    ranks_per_chunk:
        Chunk granularity forwarded to the CDP stage.
    parallel:
        Solve CDP chunks in a thread pool.
    """

    def __init__(
        self,
        x_percent: float = 50.0,
        ranks_per_chunk: int = 512,
        parallel: bool = False,
    ) -> None:
        if not 0.0 <= x_percent <= 100.0:
            raise ValueError(f"X must be in [0, 100], got {x_percent}")
        self.x_percent = float(x_percent)
        self.ranks_per_chunk = ranks_per_chunk
        self.parallel = parallel

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``CPL50``."""
        x = self.x_percent
        return f"CPL{int(x) if x == int(x) else x}"

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        counts = chunked_cdp_counts(
            costs, n_ranks, ranks_per_chunk=self.ranks_per_chunk, parallel=self.parallel
        )
        assignment = assignment_from_counts(counts)
        if self.x_percent == 0.0 or costs.shape[0] == 0 or n_ranks < 2:
            return assignment

        loads = np.bincount(assignment, weights=costs, minlength=n_ranks)
        ranks = select_rebalance_ranks(loads, self.x_percent)
        if ranks.shape[0] < 2:
            return assignment

        mask = np.isin(assignment, ranks)
        block_ids = np.nonzero(mask)[0]
        if block_ids.shape[0] == 0:
            return assignment
        local = lpt_assign(costs[block_ids], int(ranks.shape[0]))
        assignment = assignment.copy()
        assignment[block_ids] = ranks[local]
        return assignment

    def __repr__(self) -> str:
        return f"CPLX(x_percent={self.x_percent}, ranks_per_chunk={self.ranks_per_chunk})"
