"""Baseline contiguous placement (paper §V-A2).

Orders blocks by block ID (Z-order SFC) and assigns contiguous ranges of
``ceil(n/r)`` or ``floor(n/r)`` blocks to consecutive ranks — balancing
*block counts*, not costs, while co-locating spatial neighbors.  This is
what Parthenon-style codes do out of the box (per-block costs default
to 1, so count balance == cost balance under their model).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .context import PlacementContext
from .policy import PlacementPolicy, register_policy

__all__ = ["BaselinePolicy", "contiguous_counts", "assignment_from_counts"]


def contiguous_counts(n_blocks: int, n_ranks: int) -> np.ndarray:
    """Per-rank block counts for the baseline split.

    The first ``n mod r`` ranks receive ``ceil(n/r)`` blocks, the rest
    ``floor(n/r)`` — the same convention as MPI block distribution.  With
    fewer blocks than ranks, trailing ranks receive zero blocks.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_blocks < 0:
        raise ValueError("n_blocks must be >= 0")
    base, extra = divmod(n_blocks, n_ranks)
    counts = np.full(n_ranks, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


def assignment_from_counts(counts: np.ndarray) -> np.ndarray:
    """Expand per-rank contiguous counts into a block→rank assignment."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size and counts.min() < 0:
        raise ValueError("counts must be non-negative")
    return np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)


@register_policy("baseline")
class BaselinePolicy(PlacementPolicy):
    """Contiguous block-count split along the SFC.

    Ignores ``costs`` entirely (the framework default behaviour the paper
    improves on); kept cost-aware policies' exact interface so it can be
    swapped in as the control arm of every experiment.
    """

    def compute(
        self,
        costs: np.ndarray,
        n_ranks: int,
        ctx: Optional[PlacementContext] = None,
    ) -> np.ndarray:
        # A homogeneous algorithm: the context is accepted (uniform
        # interface) but never changes the split.
        return assignment_from_counts(contiguous_counts(costs.shape[0], n_ranks))
