"""Placement computation budget tracking (paper Challenge 3 / Fig. 7c).

AMR redistribution runs synchronously on the critical path; the paper
caps placement computation at 50 ms (5% of five 250 ms timesteps between
worst-case refinements).  This module measures policies against that
budget and reports the overhead-vs-scale series of Fig. 7c.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List

import numpy as np

from .policy import PlacementPolicy

__all__ = ["PAPER_BUDGET_S", "BudgetReport", "measure_policy", "within_budget"]

#: The paper's placement computation budget (50 ms).
PAPER_BUDGET_S: float = 0.050


@dataclasses.dataclass(frozen=True)
class BudgetReport:
    """Timing summary of repeated placement computations."""

    policy: str
    n_blocks: int
    n_ranks: int
    mean_s: float
    p95_s: float
    max_s: float
    budget_s: float

    @property
    def within_budget(self) -> bool:
        return self.p95_s <= self.budget_s

    def row(self) -> str:
        flag = "OK " if self.within_budget else "OVER"
        return (
            f"{self.policy:<12} ranks={self.n_ranks:<7} blocks={self.n_blocks:<8} "
            f"mean={self.mean_s * 1e3:8.3f}ms p95={self.p95_s * 1e3:8.3f}ms "
            f"max={self.max_s * 1e3:8.3f}ms [{flag}]"
        )


def measure_policy(
    policy: PlacementPolicy,
    costs: np.ndarray,
    n_ranks: int,
    repeats: int = 5,
    budget_s: float = PAPER_BUDGET_S,
) -> BudgetReport:
    """Time ``repeats`` placement computations of ``policy``.

    The first invocation is discarded as warm-up when ``repeats > 1``
    (allocator and cache effects would otherwise dominate the max).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: List[float] = []
    for i in range(repeats + (1 if repeats > 1 else 0)):
        t0 = time.perf_counter()
        policy.compute(np.asarray(costs, dtype=np.float64), n_ranks)
        dt = time.perf_counter() - t0
        if repeats == 1 or i > 0:
            times.append(dt)
    arr = np.asarray(times)
    return BudgetReport(
        policy=policy.name,
        n_blocks=int(np.asarray(costs).shape[0]),
        n_ranks=n_ranks,
        mean_s=float(arr.mean()),
        p95_s=float(np.percentile(arr, 95)),
        max_s=float(arr.max()),
        budget_s=budget_s,
    )


def within_budget(
    policy: PlacementPolicy,
    costs: np.ndarray,
    n_ranks: int,
    budget_s: float = PAPER_BUDGET_S,
) -> bool:
    """One-shot budget check (single timed run)."""
    return measure_policy(policy, costs, n_ranks, repeats=1, budget_s=budget_s).max_s <= budget_s
