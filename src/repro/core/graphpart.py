"""Graph-partitioning placement baseline (paper §VIII, Related Work).

Graph partitioners (parMETIS, Zoltan) place blocks by minimizing the
weighted *edge cut* of the neighbor graph subject to balanced part
weights.  The paper's position: "all graph-based approaches model
communication as edge cuts, which we find poorly correlated with
runtime communication overhead" — and they are too slow for the 50 ms
redistribution budget.

This module implements a competent, self-contained multilevel-flavored
partitioner (greedy BFS growth + boundary Kernighan–Lin refinement) so
benchmarks can test both claims against CPLX: edge cut vs measured
communication time, and placement cost vs the budget.

Unlike the other policies, graph partitioning needs the neighbor graph,
so :class:`GraphPartitionPolicy` is constructed *per mesh* with the
graph and exposes the standard interface on top.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..mesh.neighbors import NeighborGraph
from .metrics import DEFAULT_MESSAGE_WEIGHTS
from .policy import PlacementPolicy

__all__ = ["GraphPartitionPolicy", "greedy_graph_partition", "edge_cut", "refine_partition"]


def edge_cut(graph: NeighborGraph, assignment: np.ndarray) -> float:
    """Weighted edge cut of an assignment (the partitioner's objective)."""
    if graph.n_edges == 0:
        return 0.0
    w = graph.edge_weights(DEFAULT_MESSAGE_WEIGHTS)
    a = np.asarray(assignment)
    cut = a[graph.edges[:, 0]] != a[graph.edges[:, 1]]
    return float(w[cut].sum())


def greedy_graph_partition(
    graph: NeighborGraph,
    costs: np.ndarray,
    n_ranks: int,
    seed_order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Grow ``n_ranks`` parts by cost-bounded BFS over the neighbor graph.

    Parts are grown one at a time from the lowest-ID unassigned block
    (or a provided seed order), absorbing the most-connected frontier
    block until the part reaches the target cost ``total / r``.  This is
    the classic greedy graph-growing initializer used inside multilevel
    partitioners.
    """
    n = graph.n_blocks
    if costs.shape != (n,):
        raise ValueError(f"costs shape {costs.shape} != ({n},)")
    adj = graph.adjacency()
    w = graph.edge_weights(DEFAULT_MESSAGE_WEIGHTS)
    # Per-block neighbor weights (parallel arrays to adj).
    nbr_w: List[List[float]] = [[] for _ in range(n)]
    for (a, b), wt in zip(graph.edges, w):
        nbr_w[int(a)].append(float(wt))
        nbr_w[int(b)].append(float(wt))

    target = float(costs.sum()) / n_ranks
    assignment = np.full(n, -1, dtype=np.int64)
    order = seed_order if seed_order is not None else np.arange(n)
    cursor = 0

    for part in range(n_ranks):
        # Seed: next unassigned block in order.
        while cursor < n and assignment[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        seed = int(order[cursor])
        assignment[seed] = part
        load = float(costs[seed])
        # Frontier: connection weight of unassigned blocks to this part.
        gain = np.zeros(n)
        for j, wt in zip(adj[seed], nbr_w[seed]):
            if assignment[j] < 0:
                gain[j] += wt
        while load < target:
            candidates = np.nonzero((gain > 0) & (assignment < 0))[0]
            if candidates.size == 0:
                break
            pick = int(candidates[np.argmax(gain[candidates])])
            if load + float(costs[pick]) > target * 1.25 and load > 0.5 * target:
                break  # would blow the balance; stop growing
            assignment[pick] = part
            load += float(costs[pick])
            gain[pick] = 0.0
            for j, wt in zip(adj[pick], nbr_w[pick]):
                if assignment[j] < 0:
                    gain[j] += wt
    # Any leftovers: append to the currently least-loaded parts.
    leftovers = np.nonzero(assignment < 0)[0]
    if leftovers.size:
        loads = np.bincount(
            assignment[assignment >= 0],
            weights=costs[assignment >= 0],
            minlength=n_ranks,
        )
        for b in leftovers:
            part = int(np.argmin(loads))
            assignment[b] = part
            loads[part] += costs[b]
    return assignment


def refine_partition(
    graph: NeighborGraph,
    costs: np.ndarray,
    assignment: np.ndarray,
    n_ranks: int,
    passes: int = 2,
) -> np.ndarray:
    """Boundary refinement: move blocks to reduce cut if balance allows.

    A lightweight Kernighan–Lin/Fiduccia–Mattheyses pass: for each
    boundary block, compute the cut gain of moving it to its best
    neighboring part; apply positive-gain moves that keep the target
    balance within 30%.
    """
    a = assignment.copy()
    adj = graph.adjacency()
    w = graph.edge_weights(DEFAULT_MESSAGE_WEIGHTS)
    nbr_w: List[List[float]] = [[] for _ in range(graph.n_blocks)]
    for (x, y), wt in zip(graph.edges, w):
        nbr_w[int(x)].append(float(wt))
        nbr_w[int(y)].append(float(wt))
    target = float(costs.sum()) / n_ranks
    loads = np.bincount(a, weights=costs, minlength=n_ranks)

    for _ in range(passes):
        moved = 0
        for b in range(graph.n_blocks):
            here = int(a[b])
            # Connection weight per neighboring part.
            conn: dict[int, float] = {}
            for j, wt in zip(adj[b], nbr_w[b]):
                conn[int(a[j])] = conn.get(int(a[j]), 0.0) + wt
            internal = conn.get(here, 0.0)
            best_part, best_gain = here, 0.0
            for part, wt in conn.items():
                if part == here:
                    continue
                gain = wt - internal
                if gain > best_gain and loads[part] + costs[b] <= target * 1.3:
                    best_part, best_gain = part, gain
            if best_part != here:
                loads[here] -= costs[b]
                loads[best_part] += costs[b]
                a[b] = best_part
                moved += 1
        if moved == 0:
            break
    return a


class GraphPartitionPolicy(PlacementPolicy):
    """Edge-cut-minimizing placement over a fixed neighbor graph.

    Construct per mesh: ``GraphPartitionPolicy(mesh.neighbor_graph)``.
    The ``compute`` interface then matches every other policy, so the
    driver and benches can swap it in directly.
    """

    name = "graph-partition"

    def __init__(self, graph: NeighborGraph, refine_passes: int = 2) -> None:
        self.graph = graph
        self.refine_passes = refine_passes

    def compute(self, costs: np.ndarray, n_ranks: int) -> np.ndarray:
        if costs.shape[0] != self.graph.n_blocks:
            raise ValueError(
                f"policy built for {self.graph.n_blocks} blocks, got {costs.shape[0]}"
            )
        initial = greedy_graph_partition(self.graph, costs, n_ranks)
        return refine_partition(
            self.graph, costs, initial, n_ranks, passes=self.refine_passes
        )
