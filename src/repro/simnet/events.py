"""A minimal discrete-event simulation engine with coroutine processes.

The fine-grained simulator (used by the simulated-MPI layer and the
critical-path validation) follows the classic process-interaction style:
processes are Python generators that ``yield`` requests to the engine —
``Timeout`` to advance their clock, ``WaitEvent`` to block on a
condition, or ``Emit`` to fire one.  The engine multiplexes them over a
single event heap.

This is deliberately a from-scratch micro-engine (no simpy dependency):
~150 lines, deterministic, and fast enough for commbench-scale runs.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Generator, List

__all__ = ["Engine", "Timeout", "WaitEvent", "Emit", "SimEvent", "Process"]


class SimEvent:
    """A one-shot level-triggered event processes can wait on.

    Once :meth:`fire` is called the event stays set; later waiters resume
    immediately.  Carries an optional payload.
    """

    __slots__ = ("fired", "time", "payload", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.time: float = -1.0
        self.payload: Any = None
        self._waiters: List["Process"] = []

    def __repr__(self) -> str:
        return f"SimEvent(fired={self.fired}, time={self.time})"


@dataclasses.dataclass(frozen=True)
class Timeout:
    """Request: advance this process's clock by ``delay`` sim-seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout {self.delay}")


@dataclasses.dataclass(frozen=True)
class WaitEvent:
    """Request: block until ``event`` fires; resumes with its payload."""

    event: SimEvent


@dataclasses.dataclass(frozen=True)
class Emit:
    """Request: fire ``event`` now (with optional payload); no time passes."""

    event: SimEvent
    payload: Any = None


class Process:
    """Engine-internal wrapper around a process generator."""

    __slots__ = ("gen", "name", "done", "result", "finish_time")

    def __init__(self, gen: Generator, name: str) -> None:
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.finish_time: float = -1.0


class Engine:
    """Deterministic discrete-event engine.

    Determinism: simultaneous wake-ups are ordered by (time, sequence
    number) where the sequence number reflects scheduling order, so two
    runs of the same program interleave identically.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._n_active = 0

    # ------------------------------------------------------------------ #

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a process; it first runs at the current sim time."""
        proc = Process(gen, name)
        self._n_active += 1
        self._schedule(self.now, proc, None)
        return proc

    def event(self) -> SimEvent:
        return SimEvent()

    def fire(self, event: SimEvent, payload: Any = None) -> None:
        """Fire an event from outside any process (setup code)."""
        self._fire(event, payload)

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or sim time exceeds ``until``).

        Returns the final simulation time.  Raises ``RuntimeError`` if
        processes remain blocked when the heap drains (deadlock) —
        surfacing bugs like a ``Wait`` with no matching send.
        """
        while self._heap:
            t, _, proc, payload = heapq.heappop(self._heap)
            if until is not None and t > until:
                self.now = until
                return self.now
            self.now = t
            self._step(proc, payload)
        if self._n_active > 0:
            raise RuntimeError(
                f"deadlock: {self._n_active} process(es) blocked with no pending events"
            )
        return self.now

    # ------------------------------------------------------------------ #

    def _schedule(self, time: float, proc: Process, payload: Any) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), proc, payload))

    def _fire(self, event: SimEvent, payload: Any) -> None:
        if event.fired:
            raise RuntimeError("event fired twice")
        event.fired = True
        event.time = self.now
        event.payload = payload
        waiters, event._waiters = event._waiters, []
        for w in waiters:
            self._schedule(self.now, w, payload)

    def _step(self, proc: Process, send_value: Any) -> None:
        """Advance one process until it blocks, sleeps, or finishes."""
        while True:
            try:
                req = proc.gen.send(send_value)
            except StopIteration as stop:
                proc.done = True
                proc.result = stop.value
                proc.finish_time = self.now
                self._n_active -= 1
                return
            if isinstance(req, Timeout):
                self._schedule(self.now + req.delay, proc, None)
                return
            if isinstance(req, WaitEvent):
                ev = req.event
                if ev.fired:
                    send_value = ev.payload
                    continue
                ev._waiters.append(proc)
                return
            if isinstance(req, Emit):
                self._fire(req.event, req.payload)
                send_value = None
                continue
            raise TypeError(f"process {proc.name} yielded {req!r}; expected a request")
