"""Vectorized BSP execution model for AMR timesteps.

This is the fast path used by the Sedov experiments and microbenchmarks:
instead of simulating every message as a discrete event, each timestep
is evaluated with closed-form, vectorized phase arithmetic over ranks
and rank-pairs.  The model captures the mechanisms the paper measures:

* per-rank **compute** time from assigned block costs, node speed
  (throttling) and machine noise;
* **send dispatch** timing as a function of task ordering — with send
  priority, a rank's boundary data dispatches while it computes; without
  it, sends queue behind compute *and waits*, creating the cascading
  delays of §IV-B (modeled as a cross-rank fixpoint);
* per-message transport latency split into **local** (shared-memory) and
  **remote** (fabric) paths, with receiver-side service backlog that
  serializes incoming messages (traffic hotspots, Fig. 7a) and
  heavy-tailed local service when the shared-memory queue is undersized
  (Fig. 1a / Fig. 3);
* **ACK-loss sender stalls** when the drain queue is disabled (Fig. 1b);
* **synchronization** as a terminal allreduce: every rank stalls until
  the straggler arrives (Fig. 6a's dominant phase).

One step costs O(ranks + rank-pairs), so 50k-step runs at 4096 ranks are
tractable; the driver additionally compresses constant-placement epochs
(see :mod:`repro.amr.driver`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from ..core.metrics import DEFAULT_MESSAGE_WEIGHTS
from ..mesh.neighbors import NeighborGraph
from .cluster import Cluster
from .faults import NO_FAULTS, FaultModel
from .machine import DEFAULT_FABRIC, FabricSpec
from .tuning import TUNED, TuningConfig

__all__ = ["ExchangePattern", "StepPhases", "BSPModel"]


@dataclasses.dataclass(frozen=True)
class ExchangePattern:
    """Boundary-exchange structure for a fixed (mesh, assignment) epoch.

    All arrays are precomputed once per redistribution epoch; per-step
    evaluation only adds noise terms.

    Attributes
    ----------
    n_ranks:
        World size.
    pair_src, pair_dst, pair_local, pair_latency:
        Directed rank-pair message aggregates: source rank, destination
        rank, locality flag, and the critical-path transport latency of
        the pair (base path latency + largest single message's
        serialization).
    in_local, in_remote:
        Per-rank incoming message counts (block-pair granularity).
    out_remote:
        Per-rank outgoing remote message counts (ACK-stall exposure).
    loads:
        Per-rank compute load (sum of assigned block costs).
    intra_volume:
        Per-rank same-rank boundary volume serviced by ``memcpy``.
    """

    n_ranks: int
    pair_src: np.ndarray
    pair_dst: np.ndarray
    pair_local: np.ndarray
    pair_latency: np.ndarray
    in_local: np.ndarray
    in_remote: np.ndarray
    out_remote: np.ndarray
    loads: np.ndarray
    intra_volume: np.ndarray

    @classmethod
    def from_mesh(
        cls,
        graph: NeighborGraph,
        assignment: np.ndarray,
        costs: np.ndarray,
        cluster: Cluster,
        fabric: FabricSpec = DEFAULT_FABRIC,
        weights: Dict | None = None,
    ) -> "ExchangePattern":
        """Aggregate a block-level neighbor graph to rank-pair arrays."""
        n_ranks = cluster.n_ranks
        assignment = np.asarray(assignment, dtype=np.int64)
        loads = np.bincount(assignment, weights=costs, minlength=n_ranks)
        w = graph.edge_weights(weights or DEFAULT_MESSAGE_WEIGHTS)

        if graph.n_edges == 0:
            z = np.zeros(n_ranks, dtype=np.float64)
            return cls(
                n_ranks=n_ranks,
                pair_src=np.empty(0, dtype=np.int64),
                pair_dst=np.empty(0, dtype=np.int64),
                pair_local=np.empty(0, dtype=bool),
                pair_latency=np.empty(0, dtype=np.float64),
                in_local=z.copy(),
                in_remote=z.copy(),
                out_remote=z.copy(),
                loads=loads,
                intra_volume=z.copy(),
            )

        ra = assignment[graph.edges[:, 0]]
        rb = assignment[graph.edges[:, 1]]
        cross = ra != rb
        intra_volume = np.bincount(
            ra[~cross], weights=w[~cross], minlength=n_ranks
        ).astype(np.float64)

        # Directed messages: each cross-rank block pair exchanges both ways.
        src = np.concatenate([ra[cross], rb[cross]])
        dst = np.concatenate([rb[cross], ra[cross]])
        size = np.concatenate([w[cross], w[cross]])
        node_src = src // cluster.ranks_per_node
        node_dst = dst // cluster.ranks_per_node
        local = node_src == node_dst

        in_local = np.bincount(dst[local], minlength=n_ranks).astype(np.float64)
        in_remote = np.bincount(dst[~local], minlength=n_ranks).astype(np.float64)
        out_remote = np.bincount(src[~local], minlength=n_ranks).astype(np.float64)

        # Collapse to unique rank pairs, keeping the largest message per
        # pair for the critical transport latency.
        key = src * np.int64(n_ranks) + dst
        order = np.argsort(key, kind="stable")
        key_s, size_s = key[order], size[order]
        uniq, start = np.unique(key_s, return_index=True)
        max_size = np.maximum.reduceat(size_s, start)
        p_src = (uniq // n_ranks).astype(np.int64)
        p_dst = (uniq % n_ranks).astype(np.int64)
        p_local = (p_src // cluster.ranks_per_node) == (p_dst // cluster.ranks_per_node)
        if cluster.node_nic_gbps is not None:
            # Mixed NIC tiers: a cross-node pair's payload bandwidth is
            # governed by the slower endpoint's NIC.
            nic = cluster.rank_nic()
            remote_bw = fabric.remote_pair_bandwidth(
                np.minimum(nic[p_src], nic[p_dst])
            )
        else:
            remote_bw = fabric.remote_bandwidth
        lat = np.where(
            p_local,
            fabric.local_latency_s + max_size / fabric.local_bandwidth,
            fabric.remote_latency_s + max_size / remote_bw,
        )
        if fabric.cross_switch_extra_s > 0:
            cross = np.asarray(cluster.switch_of(p_src)) != np.asarray(
                cluster.switch_of(p_dst)
            )
            lat = lat + cross * fabric.cross_switch_extra_s
        return cls(
            n_ranks=n_ranks,
            pair_src=p_src,
            pair_dst=p_dst,
            pair_local=np.asarray(p_local, dtype=bool),
            pair_latency=lat.astype(np.float64),
            in_local=in_local,
            in_remote=in_remote,
            out_remote=out_remote,
            loads=np.asarray(loads, dtype=np.float64),
            intra_volume=intra_volume,
        )


@dataclasses.dataclass(frozen=True)
class StepPhases:
    """Per-rank phase times for one simulated timestep (seconds)."""

    compute: np.ndarray
    comm: np.ndarray
    sync: np.ndarray

    @property
    def step_time(self) -> float:
        """Wall-clock duration of the step (identical for all ranks)."""
        return float((self.compute + self.comm + self.sync).max())

    def totals(self) -> Dict[str, float]:
        """Aggregate rank-seconds per phase."""
        return {
            "compute": float(self.compute.sum()),
            "comm": float(self.comm.sum()),
            "sync": float(self.sync.sum()),
        }


class BSPModel:
    """Evaluates BSP timesteps over an :class:`ExchangePattern`.

    Parameters
    ----------
    cluster, fabric, tuning, faults:
        The simulated environment.
    seed:
        Seed for the per-step noise stream.
    """

    #: fixpoint iterations for the untuned send-after-wait cascade
    CASCADE_ITERS = 4
    #: memcpy throughput for intra-rank boundary copies (cells/second)
    MEMCPY_BANDWIDTH = 2.0e10

    def __init__(
        self,
        cluster: Cluster,
        fabric: FabricSpec = DEFAULT_FABRIC,
        tuning: TuningConfig = TUNED,
        faults: FaultModel = NO_FAULTS,
        seed: int = 0,
        exchange_rounds: int = 1,
    ) -> None:
        if exchange_rounds < 1:
            raise ValueError("exchange_rounds must be >= 1")
        self.cluster = cluster
        self.fabric = fabric
        self.tuning = tuning
        self.faults = faults
        self.rng = np.random.default_rng(seed)
        self.exchange_rounds = exchange_rounds
        # Health slowdown / hardware class speed; identical to
        # rank_speed_factor() on homogeneous clusters.
        self._speed = cluster.rank_time_factor()

    # ------------------------------------------------------------------ #

    def reconfigure(
        self,
        cluster: Cluster | None = None,
        tuning: TuningConfig | None = None,
        faults: FaultModel | None = None,
    ) -> None:
        """Apply mid-run environment changes without resetting the noise RNG.

        The resilient driver calls this when a mitigation or fault onset
        changes the world: node eviction shrinks the cluster, enabling
        the drain queue swaps the tuning, a fabric-degradation window
        swaps the effective fault model.  Keeping the RNG stream intact
        preserves determinism across reconfigurations.
        """
        if cluster is not None:
            self.cluster = cluster
            self._speed = cluster.rank_time_factor()
        if tuning is not None:
            self.tuning = tuning
        if faults is not None:
            self.faults = faults

    def rng_state(self) -> dict:
        """Snapshot of the noise-stream RNG (checkpointable)."""
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`rng_state`."""
        self.rng.bit_generator.state = state

    def step(self, pattern: ExchangePattern, compute_scale: float = 1.0) -> StepPhases:
        """Simulate one timestep; returns per-rank phase times.

        ``compute_scale`` converts block cost units into seconds
        (defaults to the machine's per-unit-cost kernel time via the
        cluster's machine spec when 1.0 is passed to :meth:`step_seconds`).
        """
        rng = self.rng
        f = self.fabric
        t = self.tuning
        n = pattern.n_ranks

        # -- compute phase ---------------------------------------------
        noise = rng.lognormal(0.0, self.cluster.machine.compute_noise_sigma, size=n)
        compute = (
            pattern.loads
            * self.cluster.machine.block_compute_s
            * compute_scale
            * self._speed
            * noise
        )

        # -- send dispatch ----------------------------------------------
        if t.send_priority:
            # Boundary cells are computed and sent first (the §IV-B
            # reordering): the message a neighbor waits on dispatches
            # early in the sender's compute phase.
            frac = rng.uniform(0.10, 0.35, size=n)
            dispatch = compute * frac
        else:
            dispatch = compute.copy()  # refined by the cascade below

        # -- receiver-side service backlog ------------------------------
        # Per exchange round; a timestep issues `exchange_rounds` rounds
        # (multi-stage integrators + flux correction + ghost refills).
        rounds = self.exchange_rounds
        local_sigma = t.queue_contention_sigma(
            float(pattern.in_local.mean()) if n else 0.0
        )
        local_service = (
            pattern.in_local
            * f.local_service_s
            * rng.lognormal(0.0, local_sigma, size=n)
        )
        remote_service = pattern.in_remote * f.remote_service_s
        backlog = (local_service + remote_service) * rounds

        # -- ACK-loss sender stalls --------------------------------------
        stalls = self.faults.sample_ack_stalls(
            (pattern.out_remote * rounds).astype(np.int64), t.drain_queue, rng
        )

        # -- memcpy for co-located neighbors ------------------------------
        memcpy = pattern.intra_volume * rounds / self.MEMCPY_BANDWIDTH

        # -- arrival fixpoint ---------------------------------------------
        def arrivals(disp: np.ndarray) -> np.ndarray:
            arr = np.zeros(n, dtype=np.float64)
            if pattern.pair_src.size:
                np.maximum.at(
                    arr,
                    pattern.pair_dst,
                    disp[pattern.pair_src] + pattern.pair_latency,
                )
            return arr

        if t.send_priority:
            # Early dispatch means a rank rarely waits on neighbor skew:
            # arrivals race only against the receiver's own compute.
            max_arrival = arrivals(dispatch)
            ready = np.maximum(compute, max_arrival) + backlog + memcpy
        else:
            # Sends scheduled after compute *and* waits: dispatch depends
            # on the rank's own wait, which depends on other ranks'
            # dispatches — iterate the cascade to (near) fixpoint.
            ready = compute + backlog + memcpy
            for _ in range(self.CASCADE_ITERS):
                dispatch = ready
                max_arrival = arrivals(dispatch)
                ready = np.maximum(compute, max_arrival) + backlog + memcpy

        # Senders blocked in MPI_Wait by ACK recovery: the recovery path
        # serializes before the rank can proceed to the collective, so the
        # stall adds to the rank's ready time (Fig. 1b's spike signature).
        ready = ready + stalls

        comm = ready - compute

        # -- synchronization ----------------------------------------------
        t_done = float(ready.max()) + f.collective_cost_s(n)
        sync = t_done - ready
        return StepPhases(compute=compute, comm=comm, sync=sync)

    def simulate_steps(
        self, pattern: ExchangePattern, n_steps: int, max_samples: int = 4
    ) -> Tuple[StepPhases, float]:
        """Simulate an epoch of ``n_steps`` identical-structure steps.

        Samples ``min(n_steps, max_samples)`` steps and scales the mean —
        placement, mesh, and loads are constant within an epoch, so only
        the noise stream differs step to step.  Returns (mean per-step
        phases, total epoch wall time).
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        k = min(n_steps, max_samples)
        acc_c = np.zeros(pattern.n_ranks)
        acc_m = np.zeros(pattern.n_ranks)
        acc_s = np.zeros(pattern.n_ranks)
        wall = 0.0
        for _ in range(k):
            ph = self.step(pattern)
            acc_c += ph.compute
            acc_m += ph.comm
            acc_s += ph.sync
            wall += ph.step_time
        mean = StepPhases(compute=acc_c / k, comm=acc_m / k, sync=acc_s / k)
        return mean, wall / k * n_steps
