"""Software-stack tuning knobs (paper §IV-B).

The paper's three representative mitigations, each a knob here:

* **Drain queue** (application level) — missing fabric ACKs triggered a
  recovery path blocking senders in ``MPI_Wait``; a drain queue
  transparently re-allocates requests and drains the blocked ones in the
  background (Fig. 1b).
* **Send priority** (application level) — MPI send tasks scheduled after
  compute/wait tasks caused cascading delays; prioritizing sends
  unblocks dependent ranks (Fig. 3 middle, §IV-D).
* **Queue size** (network level) — an undersized MPI shared-memory queue
  caused contention and heavy-tailed local-path latency, destroying the
  work↔time correlation (Fig. 1a, Fig. 3 right).

Plus the launch-workflow **health checks** of §IV-A.  ``TUNED`` and
``UNTUNED`` are the two ends every "before/after tuning" experiment
compares.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TuningConfig", "TUNED", "UNTUNED"]


@dataclasses.dataclass(frozen=True)
class TuningConfig:
    """Stack configuration for a simulated run.

    Attributes
    ----------
    send_priority:
        Schedule send tasks ahead of compute/wait tasks so boundary data
        dispatches as soon as each block finishes, instead of after the
        whole rank's compute phase.
    shm_queue_slots:
        MPI shared-memory queue depth.  Depths below the per-step local
        message demand cause sender/receiver contention with
        heavy-tailed service times.
    drain_queue:
        Enable the background drain of ACK-recovery-blocked send
        requests; senders no longer stall on fabric recovery.
    health_checks:
        Run pre/post-job node health checks and prune failing nodes.
    """

    send_priority: bool = True
    shm_queue_slots: int = 4096
    drain_queue: bool = True
    health_checks: bool = True

    def __post_init__(self) -> None:
        if self.shm_queue_slots < 1:
            raise ValueError("shm_queue_slots must be >= 1")

    def queue_contention_sigma(self, local_msgs_per_rank: float) -> float:
        """Lognormal sigma of local-path service-time noise.

        When the queue is large relative to demand the sigma is small
        (tuned regime); as demand exceeds the queue depth, retry/backoff
        behaviour makes service heavy-tailed.  The functional form is a
        smooth saturation — empirically shaped, like the paper's fix.
        """
        pressure = local_msgs_per_rank / float(self.shm_queue_slots)
        return 0.05 + 1.6 * min(pressure, 4.0) / (1.0 + min(pressure, 4.0))


#: The paper's tuned configuration (post-§IV).
TUNED = TuningConfig()

#: The initial, untuned stack: sends scheduled late, 64-slot shared-memory
#: queue, no drain queue, no health checks.
UNTUNED = TuningConfig(
    send_priority=False,
    shm_queue_slots=64,
    drain_queue=False,
    health_checks=False,
)
