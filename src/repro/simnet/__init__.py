"""Simulated cluster substrate: machines, topology, MPI, faults, tuning.

Replaces the paper's 600-node Emulab testbed with two execution models
that share the same environment description:

* :class:`~repro.simnet.mpi.SimMPI` — discrete-event simulated MPI with
  faithful happened-before semantics (fine-grained; drives the
  critical-path studies and validates the fast model);
* :class:`~repro.simnet.runtime.BSPModel` — vectorized per-step phase
  model (fast; drives the Sedov experiments and microbenchmarks).
"""

from .cluster import Cluster, NodeClass, hetero_cluster, parse_node_classes
from .events import Emit, Engine, SimEvent, Timeout, WaitEvent
from .faults import (
    NO_FAULTS,
    NO_TRANSPORT_FAULTS,
    FabricDegradation,
    FaultEvent,
    FaultModel,
    FaultTimeline,
    MigrationTransportSample,
    NodeCrash,
    ThrottleOnset,
    TransportExhaustedError,
    TransportFaultModel,
    parse_transport_spec,
)
from .machine import (
    DEFAULT_FABRIC,
    DEFAULT_MACHINE,
    DEFAULT_NIC_GBPS,
    FabricSpec,
    MachineSpec,
)
from .mpi import PhaseTimes, Request, SimMPI, TransportStats
from .runtime import BSPModel, ExchangePattern, StepPhases
from .tuning import TUNED, UNTUNED, TuningConfig
from .validate import DESComparison, compare_models, run_des_step

__all__ = [
    "BSPModel",
    "Cluster",
    "DESComparison",
    "compare_models",
    "run_des_step",
    "DEFAULT_FABRIC",
    "DEFAULT_MACHINE",
    "DEFAULT_NIC_GBPS",
    "Emit",
    "Engine",
    "ExchangePattern",
    "FabricDegradation",
    "FabricSpec",
    "FaultEvent",
    "FaultModel",
    "FaultTimeline",
    "MachineSpec",
    "MigrationTransportSample",
    "NO_FAULTS",
    "NO_TRANSPORT_FAULTS",
    "NodeClass",
    "NodeCrash",
    "ThrottleOnset",
    "PhaseTimes",
    "Request",
    "SimEvent",
    "SimMPI",
    "StepPhases",
    "TUNED",
    "Timeout",
    "TransportExhaustedError",
    "TransportFaultModel",
    "TransportStats",
    "TuningConfig",
    "UNTUNED",
    "WaitEvent",
    "hetero_cluster",
    "parse_node_classes",
    "parse_transport_spec",
]
