"""Simulated MPI semantics on the discrete-event engine.

Implements the subset of MPI that AMR boundary exchange uses —
nonblocking P2P (``isend``/``irecv``/``wait``) and blocking collectives
(``allreduce``/``barrier``) — with faithful *happened-before* semantics:
a receive completes no earlier than its matching send's dispatch plus
transport latency, and a collective completes for everyone only after
the last rank arrives.  These are exactly the ordering rules the
critical-path model of §IV-D relies on.

Rank programs are generators driven by :class:`~repro.simnet.events.Engine`;
all MPI calls are sub-generators used with ``yield from``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from .cluster import Cluster
from .events import Emit, Engine, SimEvent, Timeout, WaitEvent
from .faults import (
    NO_FAULTS,
    NO_TRANSPORT_FAULTS,
    FaultModel,
    TransportExhaustedError,
    TransportFaultModel,
)
from .machine import DEFAULT_FABRIC, FabricSpec
from .tuning import TUNED, TuningConfig

__all__ = ["SimMPI", "Request", "PhaseTimes", "TransportStats"]


@dataclasses.dataclass
class Request:
    """Handle for a nonblocking operation (completion event + metadata)."""

    kind: str                   # "send" | "recv"
    event: SimEvent
    src: int
    dst: int
    tag: int
    size: float


@dataclasses.dataclass
class PhaseTimes:
    """Per-rank accumulated phase telemetry for a simulated program."""

    compute_s: float = 0.0
    wait_s: float = 0.0
    sync_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.wait_s + self.sync_s


@dataclasses.dataclass
class TransportStats:
    """Counters of the reliable-transport protocol for one simulated run.

    ``delivered_order`` logs, per (src, dst, tag) channel, the sequence
    numbers in the order the resequencing buffer released them to the
    application — the property tests assert it is always ``0..n-1``.
    """

    messages: int = 0             #: logical sends entering the protocol
    attempts: int = 0             #: copies put on the wire (incl. retransmits)
    delivered: int = 0            #: in-order releases to the application
    drops: int = 0                #: copies (data or ACK) lost on the wire
    retransmits: int = 0          #: timeout-driven re-sends
    duplicates: int = 0           #: fabric-injected duplicate copies
    dup_suppressed: int = 0       #: copies discarded by sequence check
    reorders: int = 0             #: copies delayed past their successors
    exhausted: int = 0            #: messages that ran out of retries
    delivered_order: Dict[Tuple[int, int, int], List[int]] = dataclasses.field(
        default_factory=dict
    )


class _Mailbox:
    """Unordered-match mailbox for one (src, dst, tag) channel.

    MPI matches sends to receives in posting order per channel; we keep
    FIFO lists of unmatched arrivals and unmatched recv requests.
    """

    __slots__ = ("arrivals", "pending")

    def __init__(self) -> None:
        self.arrivals: List[Tuple[float, Any]] = []   # payloads already arrived
        self.pending: List[SimEvent] = []             # recv events awaiting arrival


class SimMPI:
    """A simulated MPI world over a cluster + fabric + tuning config.

    Parameters mirror a job launch: the cluster supplies topology
    (local vs remote paths), the fabric supplies the latency model, the
    tuning config and fault model shape the anomaly behaviour.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        fabric: FabricSpec = DEFAULT_FABRIC,
        tuning: TuningConfig = TUNED,
        faults: FaultModel = NO_FAULTS,
        transport: TransportFaultModel = NO_TRANSPORT_FAULTS,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.fabric = fabric
        self.tuning = tuning
        self.faults = faults
        self.transport = transport
        self.rng = np.random.default_rng(seed)
        self.n_ranks = cluster.n_ranks
        self._boxes: Dict[Tuple[int, int, int], _Mailbox] = {}
        self._nic_free = np.zeros(self.n_ranks, dtype=np.float64)
        self._barriers: List[Dict[str, Any]] = []
        self._barrier_round = np.zeros(self.n_ranks, dtype=np.int64)
        self.phases: List[PhaseTimes] = [PhaseTimes() for _ in range(self.n_ranks)]
        self.message_log: List[Tuple[int, int, int, float, float]] = []
        # Reliable-transport state (touched only when transport.is_active:
        # the rate-0 default leaves every code path and RNG draw of the
        # reliable fabric bit-identical to the pre-transport layer).
        self.transport_stats = TransportStats()
        self._trng = np.random.default_rng((seed, transport.seed))
        self._send_seq: Dict[Tuple[int, int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int, int], int] = {}
        self._resequence: Dict[Tuple[int, int, int], Dict[int, None]] = {}

    # ------------------------------------------------------------------ #
    # latency model
    # ------------------------------------------------------------------ #

    def is_local(self, src: int, dst: int) -> bool:
        return int(self.cluster.node_of(src)) == int(self.cluster.node_of(dst))

    def message_latency(self, src: int, dst: int, size: float) -> float:
        """One-way transport latency for a message of ``size`` cells.

        Adds the receiver-side service time with NIC/queue serialization:
        back-to-back arrivals at one rank are spaced by the service time,
        which is what makes traffic hotspots visible (Fig. 7a).  The
        local path additionally draws heavy-tailed service noise when the
        shared-memory queue is undersized (Fig. 1a / Fig. 3 right).
        """
        f = self.fabric
        if self.is_local(src, dst):
            base = f.local_latency_s + size / f.local_bandwidth
            service = f.local_service_s
            sigma = self.tuning.queue_contention_sigma(local_msgs_per_rank=8.0)
            service *= float(self.rng.lognormal(0.0, sigma))
        else:
            base = f.remote_latency_s + size / f.remote_bandwidth
            service = f.remote_service_s
        dispatch = self.engine.now
        arrival = max(dispatch + base, float(self._nic_free[dst])) + service
        self._nic_free[dst] = arrival
        return arrival - dispatch

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #

    def _box(self, src: int, dst: int, tag: int) -> _Mailbox:
        key = (src, dst, tag)
        box = self._boxes.get(key)
        if box is None:
            box = self._boxes[key] = _Mailbox()
        return box

    def isend(self, src: int, dst: int, tag: int, size: float = 1.0) -> Request:
        """Post a nonblocking send; returns immediately (buffered).

        The matching receive completes after transport latency.  The
        *send request* itself completes immediately unless an ACK-loss
        recovery stall is injected (and the drain queue is off), in which
        case waiting on it blocks for the recovery time — the Fig. 1b
        anomaly.

        With an active :class:`TransportFaultModel` a *remote* send goes
        through the reliable-delivery protocol instead: per-channel
        sequence numbers, positive ACKs, timeout retransmission with
        exponential backoff, receiver-side duplicate suppression and
        resequencing.  The send request then completes when the message
        is acknowledged.
        """
        if self.transport.is_active and not self.is_local(src, dst):
            return self._isend_reliable(src, dst, tag, size)
        now = self.engine.now
        latency = self.message_latency(src, dst, size)
        arrival_ev = self.engine.event()
        self._deliver_later(latency, src, dst, tag, arrival_ev)
        self.message_log.append((src, dst, tag, now, now + latency))

        send_ev = self.engine.event()
        stall = 0.0
        if (
            not self.tuning.drain_queue
            and self.faults.ack_loss_prob > 0.0
            and not self.is_local(src, dst)
            and self.rng.random() < self.faults.ack_loss_prob
        ):
            stall = self.faults.ack_recovery_s
        if stall > 0.0:
            self._fire_later(stall, send_ev)
        else:
            self.engine.fire(send_ev)
        return Request("send", send_ev, src, dst, tag, size)

    def irecv(self, dst: int, src: int, tag: int) -> Request:
        """Post a nonblocking receive; completes when the message arrives."""
        box = self._box(src, dst, tag)
        ev = self.engine.event()
        if box.arrivals:
            _, payload = box.arrivals.pop(0)
            self.engine.fire(ev, payload)
        else:
            box.pending.append(ev)
        return Request("recv", ev, src, dst, tag, 0.0)

    def wait(self, rank: int, request: Request) -> Generator:
        """Block until a request completes; accrues MPI_Wait telemetry."""
        t0 = self.engine.now
        if not request.event.fired:
            yield WaitEvent(request.event)
        self.phases[rank].wait_s += self.engine.now - t0

    def waitall(self, rank: int, requests: List[Request]) -> Generator:
        """Wait on a list of requests (order-independent completion)."""
        for req in requests:
            yield from self.wait(rank, req)

    # ------------------------------------------------------------------ #
    # compute + collectives
    # ------------------------------------------------------------------ #

    def compute(self, rank: int, seconds: float) -> Generator:
        """Run a compute kernel: advances this rank's clock; telemetry."""
        speed = float(self.cluster.rank_speed_factor()[rank])
        dt = seconds * speed
        self.phases[rank].compute_s += dt
        yield Timeout(dt)

    def allreduce(self, rank: int) -> Generator:
        """Blocking allreduce: completes for all after the last arrival.

        The completion adds the fabric's collective cost (log2 r tree).
        Per-rank sync telemetry is the stall between arrival and
        completion — exactly how the paper's telemetry attributes
        synchronization time to stragglers.
        """
        rnd = int(self._barrier_round[rank])
        self._barrier_round[rank] += 1
        while len(self._barriers) <= rnd:
            self._barriers.append(
                {"arrived": 0, "event": self.engine.event(), "t_last": 0.0}
            )
        bar = self._barriers[rnd]
        bar["arrived"] += 1
        bar["t_last"] = self.engine.now
        t0 = self.engine.now
        if bar["arrived"] == self.n_ranks:
            self._fire_later(self.fabric.collective_cost_s(self.n_ranks), bar["event"])
        if not bar["event"].fired:
            yield WaitEvent(bar["event"])
        self.phases[rank].sync_s += self.engine.now - t0

    barrier = allreduce  # identical timing semantics in this model

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _deliver_later(
        self, delay: float, src: int, dst: int, tag: int, arrival_ev: SimEvent
    ) -> None:
        def timer() -> Generator:
            yield Timeout(delay)
            box = self._box(src, dst, tag)
            if box.pending:
                ev = box.pending.pop(0)
                yield Emit(ev, None)
            else:
                box.arrivals.append((self.engine.now, None))
            yield Emit(arrival_ev, None)

        self.engine.spawn(timer(), name=f"msg {src}->{dst}#{tag}")

    def _fire_later(self, delay: float, event: SimEvent) -> None:
        def timer() -> Generator:
            yield Timeout(delay)
            yield Emit(event, None)

        self.engine.spawn(timer(), name="timer")

    # ------------------------------------------------------------------ #
    # reliable-delivery protocol (active TransportFaultModel only)
    # ------------------------------------------------------------------ #

    def _isend_reliable(self, src: int, dst: int, tag: int, size: float) -> Request:
        """Send one message through the ACK/retransmit protocol.

        The returned request's event fires when the sender receives the
        ACK (reliable-completion semantics).  Raises
        :class:`TransportExhaustedError` out of the engine loop if the
        retry budget is exhausted — the link is effectively down.
        """
        t = self.transport
        key = (src, dst, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        self.transport_stats.messages += 1
        p_loss = t.link_loss_prob(
            int(self.cluster.node_of(src)), int(self.cluster.node_of(dst))
        )
        send_ev = self.engine.event()

        def sender() -> Generator:
            stats = self.transport_stats
            rto = t.ack_timeout_s
            for attempt in range(t.max_retries + 1):
                stats.attempts += 1
                data_lost = self._trng.random() < p_loss
                ack_lost = False
                if not data_lost:
                    latency = self.message_latency(src, dst, size)
                    if self._trng.random() < t.reorder_prob:
                        latency += t.reorder_delay_s
                        stats.reorders += 1
                    t0 = self.engine.now
                    self._deliver_copy_later(latency, src, dst, tag, seq)
                    self.message_log.append((src, dst, tag, t0, t0 + latency))
                    if self._trng.random() < t.duplicate_prob:
                        stats.duplicates += 1
                        stats.attempts += 1
                        self._deliver_copy_later(
                            latency + self.fabric.ack_latency_s, src, dst, tag, seq
                        )
                    ack_lost = self._trng.random() < p_loss
                    if not ack_lost:
                        # Sender learns of success after the ACK round trip.
                        yield Timeout(latency + self.fabric.ack_latency_s)
                        yield Emit(send_ev, None)
                        return
                stats.drops += 1
                yield Timeout(rto)
                rto *= t.backoff_factor
                if attempt < t.max_retries:
                    stats.retransmits += 1
            stats.exhausted += 1
            raise TransportExhaustedError(
                f"message {src}->{dst}#{tag} seq {seq} undelivered after "
                f"{t.max_retries} retransmissions"
            )

        self.engine.spawn(sender(), name=f"xmit {src}->{dst}#{tag}:{seq}")
        return Request("send", send_ev, src, dst, tag, size)

    def _deliver_copy_later(
        self, delay: float, src: int, dst: int, tag: int, seq: int
    ) -> None:
        """Schedule one wire copy; the receiver resequences on arrival."""

        def timer() -> Generator:
            yield Timeout(delay)
            for ev, payload in self._accept_copy(src, dst, tag, seq):
                yield Emit(ev, payload)

        self.engine.spawn(timer(), name=f"copy {src}->{dst}#{tag}:{seq}")

    def _accept_copy(self, src: int, dst: int, tag: int, seq: int):
        """Receiver-side protocol: suppress duplicates, restore order.

        Returns the (event, payload) pairs to fire for every message the
        in-order prefix release hands to the application mailbox.
        """
        key = (src, dst, tag)
        stats = self.transport_stats
        expected = self._recv_seq.get(key, 0)
        buf = self._resequence.setdefault(key, {})
        if seq < expected or seq in buf:
            stats.dup_suppressed += 1
            return []
        buf[seq] = None
        fires = []
        box = self._box(src, dst, tag)
        order = stats.delivered_order.setdefault(key, [])
        while expected in buf:
            del buf[expected]
            order.append(expected)
            stats.delivered += 1
            if box.pending:
                fires.append((box.pending.pop(0), None))
            else:
                box.arrivals.append((self.engine.now, None))
            expected += 1
        self._recv_seq[key] = expected
        return fires
