"""Cross-validation: discrete-event MPI vs the vectorized BSP model.

The Sedov experiments run on the closed-form vectorized model
(:class:`~repro.simnet.runtime.BSPModel`) for tractability; the
discrete-event simulator (:class:`~repro.simnet.mpi.SimMPI`) executes
real isend/irecv/wait/allreduce semantics message by message.  This
module runs the *same* workload (block placement + neighbor messages +
per-rank compute) on both and compares per-step wall time — the
fidelity check behind the "epoch-compressed simulation" design choice
(see ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generator, List, Tuple

import numpy as np

from ..core.metrics import DEFAULT_MESSAGE_WEIGHTS
from ..mesh.neighbors import NeighborGraph
from .cluster import Cluster
from .events import Engine
from .machine import DEFAULT_FABRIC, FabricSpec
from .mpi import SimMPI
from .runtime import BSPModel, ExchangePattern
from .tuning import TUNED, TuningConfig

__all__ = ["DESComparison", "run_des_step", "compare_models"]


@dataclasses.dataclass(frozen=True)
class DESComparison:
    """Wall-time comparison of one BSP step under both execution models."""

    des_wall_s: float
    vectorized_wall_s: float
    des_phase_means: Dict[str, float]

    @property
    def relative_gap(self) -> float:
        base = max(self.vectorized_wall_s, 1e-12)
        return abs(self.des_wall_s - self.vectorized_wall_s) / base


def run_des_step(
    graph: NeighborGraph,
    assignment: np.ndarray,
    costs: np.ndarray,
    cluster: Cluster,
    fabric: FabricSpec = DEFAULT_FABRIC,
    tuning: TuningConfig = TUNED,
    compute_scale: float | None = None,
) -> Tuple[float, Dict[str, float]]:
    """Execute one boundary-exchange step on the discrete-event engine.

    Each rank: per-block compute kernels (with sends dispatched after
    their block when send priority is on, or after all compute
    otherwise), irecv+wait for every incoming neighbor message, then a
    terminal allreduce.  Returns (wall seconds, mean phase seconds).
    """
    n_ranks = cluster.n_ranks
    assignment = np.asarray(assignment, dtype=np.int64)
    scale = (
        cluster.machine.block_compute_s if compute_scale is None else compute_scale
    )
    w = graph.edge_weights(DEFAULT_MESSAGE_WEIGHTS)

    # Per-rank block lists (SFC order) and per-rank message plans.
    blocks_of: List[List[int]] = [[] for _ in range(n_ranks)]
    for b, r in enumerate(assignment):
        blocks_of[int(r)].append(b)
    sends_of: List[List[Tuple[int, int, int, float]]] = [[] for _ in range(n_ranks)]
    recvs_of: List[List[Tuple[int, int]]] = [[] for _ in range(n_ranks)]
    tag = 0
    for (a, b), size in zip(graph.edges, w):
        ra, rb = int(assignment[a]), int(assignment[b])
        if ra == rb:
            continue
        for src_b, rs, rd in ((int(a), ra, rb), (int(b), rb, ra)):
            sends_of[rs].append((src_b, rd, tag, float(size)))
            recvs_of[rd].append((rs, tag))
            tag += 1

    engine = Engine()
    mpi = SimMPI(engine, cluster, fabric=fabric, tuning=tuning)

    def program(rank: int) -> Generator:
        reqs = [mpi.irecv(rank, src, t) for src, t in recvs_of[rank]]
        pending = list(sends_of[rank])
        for blk in blocks_of[rank]:
            yield from mpi.compute(rank, float(costs[blk]) * scale)
            if tuning.send_priority:
                still = []
                for src_b, rd, t, size in pending:
                    if src_b == blk:
                        mpi.isend(rank, rd, t, size)
                    else:
                        still.append((src_b, rd, t, size))
                pending = still
        for src_b, rd, t, size in pending:
            mpi.isend(rank, rd, t, size)
        yield from mpi.waitall(rank, reqs)
        yield from mpi.allreduce(rank)

    for r in range(n_ranks):
        engine.spawn(program(r), name=f"rank{r}")
    wall = engine.run()
    phases = {
        "compute": float(np.mean([p.compute_s for p in mpi.phases])),
        "wait": float(np.mean([p.wait_s for p in mpi.phases])),
        "sync": float(np.mean([p.sync_s for p in mpi.phases])),
    }
    return wall, phases


def compare_models(
    graph: NeighborGraph,
    assignment: np.ndarray,
    costs: np.ndarray,
    cluster: Cluster,
    fabric: FabricSpec = DEFAULT_FABRIC,
    tuning: TuningConfig = TUNED,
    n_steps: int = 5,
    seed: int = 0,
) -> DESComparison:
    """Mean step time under DES vs the vectorized model.

    The models share structure, not randomness, so agreement is expected
    at the level of means, not per-step values.
    """
    des_walls = []
    for _ in range(n_steps):
        wall, phases = run_des_step(
            graph, assignment, costs, cluster, fabric, tuning
        )
        des_walls.append(wall)
    pattern = ExchangePattern.from_mesh(graph, assignment, costs, cluster, fabric)
    model = BSPModel(cluster, fabric=fabric, tuning=tuning, seed=seed,
                     exchange_rounds=1)
    _, vec_wall = model.simulate_steps(pattern, n_steps, max_samples=n_steps)
    return DESComparison(
        des_wall_s=float(np.mean(des_walls)),
        vectorized_wall_s=vec_wall / n_steps,
        des_phase_means=phases,
    )
