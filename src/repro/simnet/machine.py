"""Machine and fabric specifications for the simulated cluster.

Defaults approximate the paper's research cluster: 16-core Intel Xeon
E5-2670 nodes with 40 Gbps QLogic fabric, one rank per core.  The
absolute values matter less than the *ratios* that drive placement
effects — local vs remote latency, per-message overheads, and compute
kernel cost per block.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.context import REFERENCE_NIC_GBPS

__all__ = [
    "MachineSpec",
    "FabricSpec",
    "DEFAULT_MACHINE",
    "DEFAULT_FABRIC",
    "DEFAULT_NIC_GBPS",
]

#: NIC tier of the reference node class (the paper's 40 Gbps QLogic
#: fabric); per-tier bandwidth scales relative to this.
DEFAULT_NIC_GBPS = REFERENCE_NIC_GBPS


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Per-node compute characteristics.

    Attributes
    ----------
    cores_per_node:
        Ranks packed per node (paper: 16).
    block_compute_s:
        Baseline seconds to advance one mesh block one timestep at unit
        block cost.  Sedov's ~250 ms timesteps with ~2 blocks/rank give
        ~100 ms per unit-cost block; per-block *cost* multipliers model
        kernel variability on top.
    compute_noise_sigma:
        Sigma of the lognormal machine-level compute noise (OS jitter,
        cache effects) applied per rank per step.
    throttle_factor:
        Compute slowdown multiplier on thermally throttled nodes
        (paper Fig. 2: inflated by up to 4x).
    """

    cores_per_node: int = 16
    block_compute_s: float = 0.100
    compute_noise_sigma: float = 0.02
    throttle_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.block_compute_s <= 0:
            raise ValueError("block_compute_s must be positive")
        if self.compute_noise_sigma < 0:
            raise ValueError("compute_noise_sigma must be >= 0")
        if self.throttle_factor < 1:
            raise ValueError("throttle_factor must be >= 1")


@dataclasses.dataclass(frozen=True)
class FabricSpec:
    """Network/fabric characteristics (local = intra-node shared memory,
    remote = inter-node fabric).

    Boundary exchanges are small and latency-sensitive (§II-B), so the
    per-message latency terms dominate the bandwidth terms at AMR
    message sizes.

    Attributes
    ----------
    local_latency_s / remote_latency_s:
        Base one-way latency per message.
    local_bandwidth / remote_bandwidth:
        Payload bandwidth in cost-units (cells) per second; message
        *sizes* use the face/edge/vertex cell-volume weights.
    local_service_s / remote_service_s:
        *Effective* per-message receiver-side cost per exchange round —
        matching, progression, unpack, and queue service folded into one
        constant (calibrated so simulated phase fractions land in the
        paper's bands, not a raw wire time).  Incoming messages
        serialize on this, which is what creates communication hotspots
        when locality clusters traffic (Fig. 7a).
    collective_base_s / collective_per_level_s:
        Allreduce cost model: ``base + per_level * log2(r)``.
    ack_latency_s:
        One-way latency of a transport-level acknowledgment (tiny
        control packet; no payload serialization).  Only exercised when
        a :class:`~repro.simnet.faults.TransportFaultModel` activates
        the retransmit protocol.
    """

    local_latency_s: float = 1.0e-6
    remote_latency_s: float = 6.0e-6
    local_bandwidth: float = 4.0e9
    remote_bandwidth: float = 6.0e8
    local_service_s: float = 70.0e-6
    remote_service_s: float = 500.0e-6
    collective_base_s: float = 10.0e-6
    collective_per_level_s: float = 5.0e-6
    ack_latency_s: float = 2.0e-6
    #: extra one-way latency for messages crossing leaf switches in a
    #: two-tier (fat-tree-style) topology; 0 on a flat network
    cross_switch_extra_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "local_latency_s",
            "remote_latency_s",
            "local_bandwidth",
            "remote_bandwidth",
            "local_service_s",
            "remote_service_s",
            "collective_base_s",
            "collective_per_level_s",
            "ack_latency_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.cross_switch_extra_s < 0:
            raise ValueError("cross_switch_extra_s must be >= 0")

    def collective_cost_s(self, n_ranks: int) -> float:
        """Base cost of one allreduce/barrier over ``n_ranks`` (no skew)."""
        import math

        levels = math.ceil(math.log2(max(n_ranks, 2)))
        return self.collective_base_s + self.collective_per_level_s * levels

    def remote_pair_bandwidth(self, link_nic_gbps) -> np.ndarray:
        """Effective fabric bandwidth for links of the given NIC tier(s).

        ``remote_bandwidth`` is calibrated for the reference
        :data:`DEFAULT_NIC_GBPS` fabric; a link's payload bandwidth
        scales linearly with the slower endpoint's NIC tier (the
        caller passes that min).  Accepts scalars or arrays.
        """
        link = np.asarray(link_nic_gbps, dtype=np.float64)
        if link.size and link.min() <= 0:
            raise ValueError("NIC tiers must be positive")
        return self.remote_bandwidth * (link / DEFAULT_NIC_GBPS)


DEFAULT_MACHINE = MachineSpec()
DEFAULT_FABRIC = FabricSpec()
