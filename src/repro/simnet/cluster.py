"""Cluster topology: ranks, nodes, and per-rank speed state.

A :class:`Cluster` maps ranks onto nodes (dense packing, as on the
paper's testbed) and tracks per-node health state injected by
:mod:`repro.simnet.faults`.  The launch workflow with over-provisioning
and pre/post-job health checks (§IV-A) is modeled by
:meth:`Cluster.pruned`, which drops unhealthy nodes and renumbers ranks,
exactly like excluding nodes from an MPI hostfile.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from .machine import DEFAULT_MACHINE, MachineSpec

__all__ = ["Cluster"]


@dataclasses.dataclass
class Cluster:
    """A set of ranks packed onto homogeneous nodes.

    Attributes
    ----------
    n_ranks:
        Total MPI ranks.
    machine:
        Node hardware spec.
    node_speed_factor:
        Per-node compute-time multiplier (1.0 healthy; >1 slower).
        Thermal throttling sets this to ``machine.throttle_factor`` for
        whole nodes, which is why slowdowns appear "in clusters of 16"
        (Fig. 2).
    """

    n_ranks: int
    machine: MachineSpec = dataclasses.field(default_factory=lambda: DEFAULT_MACHINE)
    node_speed_factor: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    #: nodes per leaf switch; messages crossing switches pay an extra
    #: latency hop (fat-tree-style two-tier topology).  0 = flat network.
    nodes_per_switch: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.node_speed_factor is None:
            self.node_speed_factor = np.ones(self.n_nodes, dtype=np.float64)
        else:
            self.node_speed_factor = np.asarray(self.node_speed_factor, dtype=np.float64)
            if self.node_speed_factor.shape != (self.n_nodes,):
                raise ValueError(
                    f"node_speed_factor shape {self.node_speed_factor.shape} "
                    f"!= ({self.n_nodes},)"
                )
            if self.node_speed_factor.min() < 1.0:
                raise ValueError("speed factors are slowdown multipliers; must be >= 1")

    @property
    def ranks_per_node(self) -> int:
        return self.machine.cores_per_node

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.ranks_per_node)

    def node_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Node ID(s) hosting the given rank(s)."""
        return np.asarray(ranks) // self.ranks_per_node

    def switch_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Leaf-switch ID(s) of the given rank(s) (0 if flat network)."""
        nodes = np.asarray(ranks) // self.ranks_per_node
        if self.nodes_per_switch <= 0:
            return np.zeros_like(nodes)
        return nodes // self.nodes_per_switch

    def rank_speed_factor(self) -> np.ndarray:
        """Per-rank compute-time multiplier (from node health)."""
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_speed_factor[nodes]

    def throttle_nodes(self, node_ids: Sequence[int]) -> "Cluster":
        """Return a copy with the given nodes thermally throttled."""
        factor = self.node_speed_factor.copy()
        for nid in node_ids:
            if not 0 <= nid < self.n_nodes:
                raise ValueError(f"node {nid} out of range [0, {self.n_nodes})")
            factor[nid] = self.machine.throttle_factor
        return dataclasses.replace(self, node_speed_factor=factor)

    def unhealthy_nodes(self, threshold: float = 1.5) -> List[int]:
        """Nodes whose speed factor exceeds ``threshold`` (health check)."""
        return [int(i) for i in np.nonzero(self.node_speed_factor > threshold)[0]]

    def pruned(self, threshold: float = 1.5) -> "Cluster":
        """Drop unhealthy nodes and renumber ranks densely.

        Models the paper's launch workflow: over-provisioned allocations
        run health checks, failing nodes are blacklisted, and the job
        starts on the remaining (healthy) nodes with fewer ranks.
        """
        bad = set(self.unhealthy_nodes(threshold))
        if not bad:
            return self
        keep = [i for i in range(self.n_nodes) if i not in bad]
        if not keep:
            raise RuntimeError("health check pruned every node")
        n_ranks = min(self.n_ranks, len(keep) * self.ranks_per_node)
        return Cluster(
            n_ranks=n_ranks,
            machine=self.machine,
            node_speed_factor=self.node_speed_factor[keep][: -(-n_ranks // self.ranks_per_node)],
        )

    def __repr__(self) -> str:
        bad = self.unhealthy_nodes()
        return (
            f"Cluster(ranks={self.n_ranks}, nodes={self.n_nodes}, "
            f"ranks_per_node={self.ranks_per_node}, unhealthy_nodes={len(bad)})"
        )
