"""Cluster topology: ranks, nodes, and per-rank speed state.

A :class:`Cluster` maps ranks onto nodes (dense packing, as on the
paper's testbed) and tracks per-node health state injected by
:mod:`repro.simnet.faults`.  The launch workflow with over-provisioning
and pre/post-job health checks (§IV-A) is modeled by
:meth:`Cluster.pruned`, which drops unhealthy nodes and renumbers ranks,
exactly like excluding nodes from an MPI hostfile.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from .machine import DEFAULT_MACHINE, MachineSpec

__all__ = ["Cluster"]


@dataclasses.dataclass
class Cluster:
    """A set of ranks packed onto homogeneous nodes.

    Attributes
    ----------
    n_ranks:
        Total MPI ranks.
    machine:
        Node hardware spec.
    node_speed_factor:
        Per-node compute-time multiplier (1.0 healthy; >1 slower).
        Thermal throttling sets this to ``machine.throttle_factor`` for
        whole nodes, which is why slowdowns appear "in clusters of 16"
        (Fig. 2).
    """

    n_ranks: int
    machine: MachineSpec = dataclasses.field(default_factory=lambda: DEFAULT_MACHINE)
    node_speed_factor: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    #: nodes per leaf switch; messages crossing switches pay an extra
    #: latency hop (fat-tree-style two-tier topology).  0 = flat network.
    nodes_per_switch: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.node_speed_factor is None:
            self.node_speed_factor = np.ones(self.n_nodes, dtype=np.float64)
        else:
            self.node_speed_factor = np.asarray(self.node_speed_factor, dtype=np.float64)
            if self.node_speed_factor.shape != (self.n_nodes,):
                raise ValueError(
                    f"node_speed_factor shape {self.node_speed_factor.shape} "
                    f"!= ({self.n_nodes},)"
                )
            if self.node_speed_factor.min() < 1.0:
                raise ValueError("speed factors are slowdown multipliers; must be >= 1")

    @property
    def ranks_per_node(self) -> int:
        return self.machine.cores_per_node

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.ranks_per_node)

    def node_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Node ID(s) hosting the given rank(s)."""
        return np.asarray(ranks) // self.ranks_per_node

    def switch_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Leaf-switch ID(s) of the given rank(s) (0 if flat network)."""
        nodes = np.asarray(ranks) // self.ranks_per_node
        if self.nodes_per_switch <= 0:
            return np.zeros_like(nodes)
        return nodes // self.nodes_per_switch

    def rank_speed_factor(self) -> np.ndarray:
        """Per-rank compute-time multiplier (from node health)."""
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_speed_factor[nodes]

    def _check_node_ids(self, node_ids: Sequence[int], what: str) -> List[int]:
        """Validate a node-id list: integral, in range, no duplicates."""
        ids = [int(n) for n in node_ids]
        seen = set()
        for nid in ids:
            if not 0 <= nid < self.n_nodes:
                raise ValueError(
                    f"cannot {what} node {nid}: out of range [0, {self.n_nodes})"
                )
            if nid in seen:
                raise ValueError(f"cannot {what} node {nid} twice (duplicate id)")
            seen.add(nid)
        return ids

    def _ranks_on_node(self, nid: int) -> int:
        """Ranks hosted by a node (dense packing; only the last is partial)."""
        if nid == self.n_nodes - 1:
            return self.n_ranks - self.ranks_per_node * (self.n_nodes - 1)
        return self.ranks_per_node

    def throttle_nodes(
        self, node_ids: Sequence[int], factor: float | None = None
    ) -> "Cluster":
        """Return a copy with the given nodes thermally throttled.

        ``factor`` overrides the machine's throttle factor (mid-run
        onsets can be milder or harsher than the static default).
        Re-throttling an already-throttled node is allowed (idempotent);
        duplicate ids *within one call* are rejected as caller bugs.
        """
        ids = self._check_node_ids(node_ids, "throttle")
        if factor is not None and factor < 1.0:
            raise ValueError("throttle factor must be >= 1 (slowdown multiplier)")
        f = self.machine.throttle_factor if factor is None else float(factor)
        speed = self.node_speed_factor.copy()
        for nid in ids:
            speed[nid] = f
        return dataclasses.replace(self, node_speed_factor=speed)

    def evict_nodes(self, node_ids: Sequence[int]) -> "Cluster":
        """Drop specific nodes and renumber the survivors densely.

        The online analogue of :meth:`pruned`: mid-run mitigation evicts
        nodes flagged by the health monitor (or killed by a fail-stop
        crash) and the job continues on the healthy subset with fewer
        ranks — like editing the hostfile and relaunching, except the
        runtime shrinks the communicator in place.  Surviving nodes keep
        their health state.  Use :meth:`eviction_rank_map` to translate
        old rank ids into the shrunken numbering.
        """
        ids = self._check_node_ids(node_ids, "evict")
        if not ids:
            return self
        bad = set(ids)
        keep = [i for i in range(self.n_nodes) if i not in bad]
        if not keep:
            raise RuntimeError("eviction would remove every node")
        n_ranks = sum(self._ranks_on_node(i) for i in keep)
        return Cluster(
            n_ranks=n_ranks,
            machine=self.machine,
            node_speed_factor=self.node_speed_factor[keep],
            nodes_per_switch=self.nodes_per_switch,
        )

    def eviction_rank_map(self, node_ids: Sequence[int]) -> np.ndarray:
        """Old-rank → new-rank map for :meth:`evict_nodes` (−1 = evicted).

        Lets the driver carry a block→rank assignment across an eviction:
        blocks on surviving ranks keep a (renumbered) owner; blocks on
        evicted ranks map to −1 and must be re-materialized elsewhere.
        """
        ids = self._check_node_ids(node_ids, "evict")
        bad = np.zeros(self.n_nodes, dtype=bool)
        bad[ids] = True
        # Dense packing: surviving ranks keep their relative order, so
        # the new numbering is just a running count over the keep mask.
        keep = ~bad[np.arange(self.n_ranks) // self.ranks_per_node]
        out = np.full(self.n_ranks, -1, dtype=np.int64)
        out[keep] = np.arange(int(keep.sum()), dtype=np.int64)
        return out

    def unhealthy_nodes(self, threshold: float = 1.5) -> List[int]:
        """Nodes whose speed factor exceeds ``threshold`` (health check)."""
        return [int(i) for i in np.nonzero(self.node_speed_factor > threshold)[0]]

    def pruned(self, threshold: float = 1.5) -> "Cluster":
        """Drop unhealthy nodes and renumber ranks densely.

        Models the paper's launch workflow: over-provisioned allocations
        run health checks, failing nodes are blacklisted, and the job
        starts on the remaining (healthy) nodes with fewer ranks.
        """
        bad = set(self.unhealthy_nodes(threshold))
        if not bad:
            return self
        keep = [i for i in range(self.n_nodes) if i not in bad]
        if not keep:
            raise RuntimeError("health check pruned every node")
        n_ranks = min(self.n_ranks, len(keep) * self.ranks_per_node)
        return Cluster(
            n_ranks=n_ranks,
            machine=self.machine,
            node_speed_factor=self.node_speed_factor[keep][: -(-n_ranks // self.ranks_per_node)],
        )

    def __repr__(self) -> str:
        bad = self.unhealthy_nodes()
        return (
            f"Cluster(ranks={self.n_ranks}, nodes={self.n_nodes}, "
            f"ranks_per_node={self.ranks_per_node}, unhealthy_nodes={len(bad)})"
        )
