"""Cluster topology: ranks, nodes, and per-rank speed state.

A :class:`Cluster` maps ranks onto nodes (dense packing, as on the
paper's testbed) and tracks per-node health state injected by
:mod:`repro.simnet.faults`.  The launch workflow with over-provisioning
and pre/post-job health checks (§IV-A) is modeled by
:meth:`Cluster.pruned`, which drops unhealthy nodes and renumbers ranks,
exactly like excluding nodes from an MPI hostfile.

Heterogeneous hardware (ROADMAP item 2) is modeled by per-node *classes*
(:class:`NodeClass`: relative compute speed + NIC tier), built with
:func:`hetero_cluster` from specs like ``fast:0.5x16,slow:1.0x48``.
Class speed is **hardware capacity** and is deliberately orthogonal to
``node_speed_factor``, the **transient fault slowdown** (thermal
throttling) that multiplies on top — a fast node can still throttle.
Policies see only the hardware side, via
:meth:`Cluster.placement_context`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.context import PlacementContext
from .machine import DEFAULT_MACHINE, DEFAULT_NIC_GBPS, MachineSpec

__all__ = ["Cluster", "NodeClass", "hetero_cluster", "parse_node_classes"]


@dataclasses.dataclass(frozen=True)
class NodeClass:
    """One hardware class in a mixed cluster.

    Attributes
    ----------
    name:
        Label used in specs and reports (``fast``, ``slow``, ``gpu``…).
    speed:
        Relative compute *throughput* (1.0 = reference node; 2.0
        finishes a block in half the time).  Spec strings give the
        reciprocal — a compute-**time** multiplier, mirroring
        ``node_speed_factor`` — so ``fast:0.5`` parses to ``speed=2.0``.
    nic_gbps:
        NIC tier (reference fabric: 40 Gbps).
    """

    name: str
    speed: float
    nic_gbps: float = DEFAULT_NIC_GBPS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node class name must be non-empty")
        if not np.isfinite(self.speed) or self.speed <= 0:
            raise ValueError(f"class speed must be positive, got {self.speed}")
        if not np.isfinite(self.nic_gbps) or self.nic_gbps <= 0:
            raise ValueError(f"nic_gbps must be positive, got {self.nic_gbps}")


def parse_node_classes(spec: str) -> Tuple[Tuple[NodeClass, int], ...]:
    """Parse a ``--node-classes`` spec into ``(NodeClass, count)`` pairs.

    Grammar: comma-separated ``name:TIMExCOUNT[@NIC]`` entries, e.g.
    ``fast:0.5x16,slow:1.0x48`` (16 nodes at half the compute time plus
    48 reference nodes) or ``gpu:0.25x4@100,cpu:1.0x12`` (a 100 Gbps
    NIC tier on the fast partition).  TIME is the per-unit-cost compute
    *time* multiplier; :class:`NodeClass` stores its reciprocal as
    throughput.  Counts are template proportions — see
    :func:`hetero_cluster` for how they scale to a rank count.
    """
    entries = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        try:
            name, rest = part.split(":", 1)
            if "@" in rest:
                rest, nic_s = rest.rsplit("@", 1)
                nic = float(nic_s)
            else:
                nic = DEFAULT_NIC_GBPS
            time_s, count_s = rest.split("x", 1)
            time_factor = float(time_s)
            count = int(count_s)
        except ValueError:
            raise ValueError(
                f"bad node-class entry {part!r}; expected name:TIMExCOUNT[@NIC]"
            ) from None
        if time_factor <= 0:
            raise ValueError(f"time factor must be positive in {part!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1 in {part!r}")
        entries.append((NodeClass(name.strip(), 1.0 / time_factor, nic), count))
    if not entries:
        raise ValueError(f"node-class spec {spec!r} has no entries")
    return tuple(entries)


def hetero_cluster(
    n_ranks: int,
    classes: Union[str, Sequence[Tuple[NodeClass, int]]],
    machine: MachineSpec = DEFAULT_MACHINE,
    nodes_per_switch: int = 0,
) -> "Cluster":
    """Build a mixed-hardware :class:`Cluster` from a class template.

    ``classes`` is a spec string (see :func:`parse_node_classes`) or
    ``(NodeClass, count)`` pairs.  Template counts are *proportions*:
    the cluster's nodes are allocated to classes by largest-remainder
    proportional split, in template order, as contiguous node blocks
    (real mixed clusters partition by rack).  When the template total
    equals the node count the allocation is exact.  A class may receive
    zero nodes at small scales.
    """
    if isinstance(classes, str):
        classes = parse_node_classes(classes)
    classes = tuple(classes)
    if not classes:
        raise ValueError("at least one node class is required")
    counts = np.asarray([int(c) for _, c in classes], dtype=np.int64)
    if counts.min() < 1:
        raise ValueError("class counts must be >= 1")
    n_nodes = -(-n_ranks // machine.cores_per_node)
    # Contiguous proportional allocation: cumulative shares floor to
    # node boundaries, so totals are exact and order is preserved.
    bounds = np.floor(np.cumsum(counts) * n_nodes / counts.sum()).astype(np.int64)
    bounds[-1] = n_nodes
    alloc = np.diff(np.concatenate([[0], bounds]))
    node_speed = np.concatenate(
        [np.full(int(k), nc.speed) for (nc, _), k in zip(classes, alloc)]
    )
    node_nic = np.concatenate(
        [np.full(int(k), nc.nic_gbps) for (nc, _), k in zip(classes, alloc)]
    )
    return Cluster(
        n_ranks=n_ranks,
        machine=machine,
        nodes_per_switch=nodes_per_switch,
        node_speed=node_speed,
        node_nic_gbps=node_nic,
    )


@dataclasses.dataclass
class Cluster:
    """A set of ranks packed onto homogeneous nodes.

    Attributes
    ----------
    n_ranks:
        Total MPI ranks.
    machine:
        Node hardware spec.
    node_speed_factor:
        Per-node compute-time multiplier (1.0 healthy; >1 slower).
        Thermal throttling sets this to ``machine.throttle_factor`` for
        whole nodes, which is why slowdowns appear "in clusters of 16"
        (Fig. 2).
    """

    n_ranks: int
    machine: MachineSpec = dataclasses.field(default_factory=lambda: DEFAULT_MACHINE)
    node_speed_factor: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    #: nodes per leaf switch; messages crossing switches pay an extra
    #: latency hop (fat-tree-style two-tier topology).  0 = flat network.
    nodes_per_switch: int = 0
    #: per-node hardware *throughput* (:class:`NodeClass` speed, 1.0 =
    #: reference); ``None`` = homogeneous cluster (the legacy default).
    node_speed: Optional[np.ndarray] = None
    #: per-node NIC tier in Gbps; ``None`` = uniform reference fabric.
    node_nic_gbps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.node_speed_factor is None:
            self.node_speed_factor = np.ones(self.n_nodes, dtype=np.float64)
        else:
            self.node_speed_factor = np.asarray(self.node_speed_factor, dtype=np.float64)
            if self.node_speed_factor.shape != (self.n_nodes,):
                raise ValueError(
                    f"node_speed_factor shape {self.node_speed_factor.shape} "
                    f"!= ({self.n_nodes},)"
                )
            if self.node_speed_factor.min() < 1.0:
                raise ValueError("speed factors are slowdown multipliers; must be >= 1")
        for field in ("node_speed", "node_nic_gbps"):
            arr = getattr(self, field)
            if arr is None:
                continue
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (self.n_nodes,):
                raise ValueError(f"{field} shape {arr.shape} != ({self.n_nodes},)")
            if not np.isfinite(arr).all() or arr.min() <= 0:
                raise ValueError(f"{field} entries must be positive and finite")
            setattr(self, field, arr)

    @property
    def ranks_per_node(self) -> int:
        return self.machine.cores_per_node

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.ranks_per_node)

    def node_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Node ID(s) hosting the given rank(s)."""
        return np.asarray(ranks) // self.ranks_per_node

    def switch_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Leaf-switch ID(s) of the given rank(s) (0 if flat network)."""
        nodes = np.asarray(ranks) // self.ranks_per_node
        if self.nodes_per_switch <= 0:
            return np.zeros_like(nodes)
        return nodes // self.nodes_per_switch

    def rank_speed_factor(self) -> np.ndarray:
        """Per-rank compute-time multiplier (from node health)."""
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_speed_factor[nodes]

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any per-node hardware class arrays are set."""
        return self.node_speed is not None or self.node_nic_gbps is not None

    def rank_capacity(self) -> np.ndarray:
        """Per-rank hardware throughput (1.0 = reference node class).

        This is the *capacity* side only — transient fault slowdowns
        (``node_speed_factor``) are deliberately excluded, because
        placement policies plan against hardware, not against faults
        they cannot observe collectively.
        """
        if self.node_speed is None:
            return np.ones(self.n_ranks, dtype=np.float64)
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_speed[nodes]

    def rank_nic(self) -> np.ndarray:
        """Per-rank NIC tier in Gbps (reference tier when unset)."""
        if self.node_nic_gbps is None:
            return np.full(self.n_ranks, DEFAULT_NIC_GBPS, dtype=np.float64)
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_nic_gbps[nodes]

    def rank_time_factor(self) -> np.ndarray:
        """Per-rank compute-time multiplier: health slowdown / hw speed.

        The quantity the runtime charges per unit of block cost.  On a
        homogeneous cluster this *is* :meth:`rank_speed_factor` (same
        array object semantics, bit-identical values); on mixed hardware
        a class speed of 2.0 halves the time while a throttle factor of
        4.0 still quadruples it.
        """
        if self.node_speed is None:
            return self.rank_speed_factor()
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return self.node_speed_factor[nodes] / self.node_speed[nodes]

    def placement_context(self) -> PlacementContext:
        """The hardware view policies see (:class:`PlacementContext`)."""
        return PlacementContext(
            rank_speed=self.rank_capacity(),
            rank_nic_gbps=self.rank_nic(),
            ranks_per_node=self.ranks_per_node,
        )

    def _check_node_ids(self, node_ids: Sequence[int], what: str) -> List[int]:
        """Validate a node-id list: integral, in range, no duplicates."""
        ids = [int(n) for n in node_ids]
        seen = set()
        for nid in ids:
            if not 0 <= nid < self.n_nodes:
                raise ValueError(
                    f"cannot {what} node {nid}: out of range [0, {self.n_nodes})"
                )
            if nid in seen:
                raise ValueError(f"cannot {what} node {nid} twice (duplicate id)")
            seen.add(nid)
        return ids

    def _ranks_on_node(self, nid: int) -> int:
        """Ranks hosted by a node (dense packing; only the last is partial)."""
        if nid == self.n_nodes - 1:
            return self.n_ranks - self.ranks_per_node * (self.n_nodes - 1)
        return self.ranks_per_node

    def throttle_nodes(
        self, node_ids: Sequence[int], factor: float | None = None
    ) -> "Cluster":
        """Return a copy with the given nodes thermally throttled.

        ``factor`` overrides the machine's throttle factor (mid-run
        onsets can be milder or harsher than the static default).
        Re-throttling an already-throttled node is allowed (idempotent);
        duplicate ids *within one call* are rejected as caller bugs.
        """
        ids = self._check_node_ids(node_ids, "throttle")
        if factor is not None and factor < 1.0:
            raise ValueError("throttle factor must be >= 1 (slowdown multiplier)")
        f = self.machine.throttle_factor if factor is None else float(factor)
        speed = self.node_speed_factor.copy()
        for nid in ids:
            speed[nid] = f
        return dataclasses.replace(self, node_speed_factor=speed)

    def evict_nodes(self, node_ids: Sequence[int]) -> "Cluster":
        """Drop specific nodes and renumber the survivors densely.

        The online analogue of :meth:`pruned`: mid-run mitigation evicts
        nodes flagged by the health monitor (or killed by a fail-stop
        crash) and the job continues on the healthy subset with fewer
        ranks — like editing the hostfile and relaunching, except the
        runtime shrinks the communicator in place.  Surviving nodes keep
        their health state.  Use :meth:`eviction_rank_map` to translate
        old rank ids into the shrunken numbering.
        """
        ids = self._check_node_ids(node_ids, "evict")
        if not ids:
            return self
        bad = set(ids)
        keep = [i for i in range(self.n_nodes) if i not in bad]
        if not keep:
            raise RuntimeError("eviction would remove every node")
        n_ranks = sum(self._ranks_on_node(i) for i in keep)
        return Cluster(
            n_ranks=n_ranks,
            machine=self.machine,
            node_speed_factor=self.node_speed_factor[keep],
            nodes_per_switch=self.nodes_per_switch,
            node_speed=None if self.node_speed is None else self.node_speed[keep],
            node_nic_gbps=(
                None if self.node_nic_gbps is None else self.node_nic_gbps[keep]
            ),
        )

    def eviction_rank_map(self, node_ids: Sequence[int]) -> np.ndarray:
        """Old-rank → new-rank map for :meth:`evict_nodes` (−1 = evicted).

        Lets the driver carry a block→rank assignment across an eviction:
        blocks on surviving ranks keep a (renumbered) owner; blocks on
        evicted ranks map to −1 and must be re-materialized elsewhere.
        """
        ids = self._check_node_ids(node_ids, "evict")
        bad = np.zeros(self.n_nodes, dtype=bool)
        bad[ids] = True
        # Dense packing: surviving ranks keep their relative order, so
        # the new numbering is just a running count over the keep mask.
        keep = ~bad[np.arange(self.n_ranks) // self.ranks_per_node]
        out = np.full(self.n_ranks, -1, dtype=np.int64)
        out[keep] = np.arange(int(keep.sum()), dtype=np.int64)
        return out

    def unhealthy_nodes(self, threshold: float = 1.5) -> List[int]:
        """Nodes whose speed factor exceeds ``threshold`` (health check)."""
        return [int(i) for i in np.nonzero(self.node_speed_factor > threshold)[0]]

    def pruned(self, threshold: float = 1.5) -> "Cluster":
        """Drop unhealthy nodes and renumber ranks densely.

        Models the paper's launch workflow: over-provisioned allocations
        run health checks, failing nodes are blacklisted, and the job
        starts on the remaining (healthy) nodes with fewer ranks.
        """
        bad = set(self.unhealthy_nodes(threshold))
        if not bad:
            return self
        keep = [i for i in range(self.n_nodes) if i not in bad]
        if not keep:
            raise RuntimeError("health check pruned every node")
        # Count the survivors' actual ranks: a surviving *partial* last
        # node contributes only its own ranks.  (The old
        # ``min(n_ranks, len(keep) * ranks_per_node)`` counted it as
        # full whenever any other node was pruned, inflating n_ranks.)
        n_ranks = sum(self._ranks_on_node(i) for i in keep)
        return Cluster(
            n_ranks=n_ranks,
            machine=self.machine,
            node_speed_factor=self.node_speed_factor[keep],
            nodes_per_switch=self.nodes_per_switch,
            node_speed=None if self.node_speed is None else self.node_speed[keep],
            node_nic_gbps=(
                None if self.node_nic_gbps is None else self.node_nic_gbps[keep]
            ),
        )

    def __repr__(self) -> str:
        bad = self.unhealthy_nodes()
        return (
            f"Cluster(ranks={self.n_ranks}, nodes={self.n_nodes}, "
            f"ranks_per_node={self.ranks_per_node}, unhealthy_nodes={len(bad)})"
        )
