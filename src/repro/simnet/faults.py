"""Fail-slow hardware and fabric fault injection (paper §IV-A, Fig. 1b).

Faults here are the *causes* the paper had to diagnose before placement
work could begin:

* **Thermal throttling** — whole nodes slow down by ~4x; with 16 ranks
  per node the telemetry shows slowdowns "in clusters of 16" (Fig. 2).
* **ACK-loss recovery stalls** — the fabric occasionally misses an
  acknowledgment and the driver's recovery path blocks the *sender* in
  ``MPI_Wait`` even though the receiver already has the data (Fig. 1b).

Injection is deterministic given the seed so experiments are exactly
reproducible.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .cluster import Cluster

__all__ = ["FaultModel", "NO_FAULTS"]


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Configured fault injection for a simulated run.

    Attributes
    ----------
    throttled_node_fraction:
        Fraction of nodes thermally throttled at job start.
    ack_loss_prob:
        Per remote-message probability of a missing ACK.
    ack_recovery_s:
        Sender stall caused by one recovery event (when the drain queue
        is disabled).  The paper observed multi-millisecond spikes on
        microsecond-scale messages.
    seed:
        Seed for fault-site selection.
    """

    throttled_node_fraction: float = 0.0
    ack_loss_prob: float = 0.0
    ack_recovery_s: float = 5.0e-3
    seed: int = 12345

    def __post_init__(self) -> None:
        if not 0.0 <= self.throttled_node_fraction <= 1.0:
            raise ValueError("throttled_node_fraction must be in [0, 1]")
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.ack_recovery_s < 0:
            raise ValueError("ack_recovery_s must be >= 0")

    def apply_to_cluster(self, cluster: Cluster) -> Cluster:
        """Throttle the selected fraction of nodes (deterministic)."""
        if self.throttled_node_fraction == 0.0:
            return cluster
        rng = np.random.default_rng(self.seed)
        n_bad = int(round(self.throttled_node_fraction * cluster.n_nodes))
        if n_bad == 0 and self.throttled_node_fraction > 0:
            n_bad = 1
        bad = rng.choice(cluster.n_nodes, size=min(n_bad, cluster.n_nodes), replace=False)
        return cluster.throttle_nodes([int(b) for b in bad])

    def ack_stall_expectation(
        self, remote_sends_per_rank: np.ndarray, drain_queue: bool
    ) -> np.ndarray:
        """Expected per-rank sender stall per step from ACK recovery.

        With the drain queue enabled the stall is eliminated (requests
        drain in the background); otherwise each remote send stalls its
        sender with probability ``ack_loss_prob`` for ``ack_recovery_s``.
        """
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros_like(np.asarray(remote_sends_per_rank, dtype=np.float64))
        return (
            np.asarray(remote_sends_per_rank, dtype=np.float64)
            * self.ack_loss_prob
            * self.ack_recovery_s
        )

    def sample_ack_stalls(
        self,
        remote_sends_per_rank: np.ndarray,
        drain_queue: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sampled per-rank sender stall for one step (spiky, Fig. 1b).

        Binomial number of recovery events per rank; each event stalls
        the sender the full recovery time — so most steps see zero and a
        few see multi-millisecond spikes, reproducing the telemetry
        signature rather than its mean.
        """
        sends = np.asarray(remote_sends_per_rank)
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros(sends.shape[0], dtype=np.float64)
        events = rng.binomial(np.maximum(sends, 0).astype(np.int64), self.ack_loss_prob)
        return events.astype(np.float64) * self.ack_recovery_s


#: A healthy cluster and fabric.
NO_FAULTS = FaultModel()
