"""Fail-slow hardware and fabric fault injection (paper §IV-A, Fig. 1b).

Faults here are the *causes* the paper had to diagnose before placement
work could begin:

* **Thermal throttling** — whole nodes slow down by ~4x; with 16 ranks
  per node the telemetry shows slowdowns "in clusters of 16" (Fig. 2).
* **ACK-loss recovery stalls** — the fabric occasionally misses an
  acknowledgment and the driver's recovery path blocks the *sender* in
  ``MPI_Wait`` even though the receiver already has the data (Fig. 1b).

Two layers of injection:

* :class:`FaultModel` — *static* faults present from job start (the
  paper's pre-run health-check scenario);
* :class:`FaultTimeline` — a static base plus *events* that onset
  mid-run: :class:`ThrottleOnset` (a node starts throttling at a given
  step), :class:`NodeCrash` (fail-stop node loss), and
  :class:`FabricDegradation` (a transient window of elevated ACK loss).
  A timeline with no events degenerates exactly to its static base.

Injection is deterministic given the seed so experiments are exactly
reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

import numpy as np

from .cluster import Cluster

__all__ = [
    "FaultModel",
    "NO_FAULTS",
    "ThrottleOnset",
    "NodeCrash",
    "FabricDegradation",
    "FaultEvent",
    "FaultTimeline",
    "TransportFaultModel",
    "NO_TRANSPORT_FAULTS",
    "MigrationTransportSample",
    "TransportExhaustedError",
    "parse_transport_spec",
]


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Configured fault injection for a simulated run.

    Attributes
    ----------
    throttled_node_fraction:
        Fraction of nodes thermally throttled at job start.
    ack_loss_prob:
        Per remote-message probability of a missing ACK.
    ack_recovery_s:
        Sender stall caused by one recovery event (when the drain queue
        is disabled).  The paper observed multi-millisecond spikes on
        microsecond-scale messages.
    seed:
        Seed for fault-site selection.
    """

    throttled_node_fraction: float = 0.0
    ack_loss_prob: float = 0.0
    ack_recovery_s: float = 5.0e-3
    seed: int = 12345

    def __post_init__(self) -> None:
        # Seed/fraction interactions are validated here, in one place:
        # node selection below is a deterministic function of (seed,
        # fraction, n_nodes), so both must be well-formed together.
        if not 0.0 <= self.throttled_node_fraction <= 1.0:
            raise ValueError("throttled_node_fraction must be in [0, 1]")
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.ack_recovery_s < 0:
            raise ValueError("ack_recovery_s must be >= 0")
        if not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError("seed must be >= 0 (numpy Generator requirement)")

    def throttled_node_ids(self, n_nodes: int) -> List[int]:
        """Deterministic fault-site selection for a cluster of ``n_nodes``.

        At least one node is selected whenever the fraction is positive
        (a tiny cluster still exhibits the fault), never more than
        ``n_nodes``.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.throttled_node_fraction == 0.0:
            return []
        rng = np.random.default_rng(self.seed)
        n_bad = int(round(self.throttled_node_fraction * n_nodes))
        n_bad = min(max(n_bad, 1), n_nodes)
        bad = rng.choice(n_nodes, size=n_bad, replace=False)
        return sorted(int(b) for b in bad)

    def apply_to_cluster(self, cluster: Cluster) -> Cluster:
        """Throttle the selected fraction of nodes (deterministic)."""
        bad = self.throttled_node_ids(cluster.n_nodes)
        if not bad:
            return cluster
        return cluster.throttle_nodes(bad)

    def ack_stall_expectation(
        self, remote_sends_per_rank: np.ndarray, drain_queue: bool
    ) -> np.ndarray:
        """Expected per-rank sender stall per step from ACK recovery.

        With the drain queue enabled the stall is eliminated (requests
        drain in the background); otherwise each remote send stalls its
        sender with probability ``ack_loss_prob`` for ``ack_recovery_s``.
        """
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros_like(np.asarray(remote_sends_per_rank, dtype=np.float64))
        return (
            np.asarray(remote_sends_per_rank, dtype=np.float64)
            * self.ack_loss_prob
            * self.ack_recovery_s
        )

    def sample_ack_stalls(
        self,
        remote_sends_per_rank: np.ndarray,
        drain_queue: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sampled per-rank sender stall for one step (spiky, Fig. 1b).

        Binomial number of recovery events per rank; each event stalls
        the sender the full recovery time — so most steps see zero and a
        few see multi-millisecond spikes, reproducing the telemetry
        signature rather than its mean.
        """
        sends = np.asarray(remote_sends_per_rank)
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros(sends.shape[0], dtype=np.float64)
        events = rng.binomial(np.maximum(sends, 0).astype(np.int64), self.ack_loss_prob)
        return events.astype(np.float64) * self.ack_recovery_s


#: A healthy cluster and fabric.
NO_FAULTS = FaultModel()


# --------------------------------------------------------------------- #
# Mid-run fault events
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class ThrottleOnset:
    """Thermal throttling that *begins* mid-run on specific nodes.

    ``nodes`` are original (job-start) node ids; the resilient driver
    maps them through evictions.  ``factor`` overrides the machine's
    default throttle factor when given.
    """

    step: int
    nodes: Tuple[int, ...]
    factor: float | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("onset step must be >= 0")
        nodes = tuple(int(n) for n in self.nodes)
        if not nodes:
            raise ValueError("ThrottleOnset needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node ids in {nodes}")
        if any(n < 0 for n in nodes):
            raise ValueError(f"node ids must be >= 0, got {nodes}")
        object.__setattr__(self, "nodes", nodes)
        if self.factor is not None and self.factor < 1.0:
            raise ValueError("throttle factor must be >= 1")


@dataclasses.dataclass(frozen=True)
class NodeCrash:
    """Fail-stop loss of one node at a given step (kills the job)."""

    step: int
    node: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("crash step must be >= 0")
        if self.node < 0:
            raise ValueError("node id must be >= 0")


@dataclasses.dataclass(frozen=True)
class FabricDegradation:
    """A transient window of elevated fabric ACK loss.

    Active for steps in ``[step, end_step)``.  ``ack_recovery_s`` of
    ``None`` keeps the base model's recovery time.
    """

    step: int
    end_step: int
    ack_loss_prob: float
    ack_recovery_s: float | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("window start step must be >= 0")
        if self.end_step <= self.step:
            raise ValueError(
                f"window [{self.step}, {self.end_step}) is empty or inverted"
            )
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.ack_recovery_s is not None and self.ack_recovery_s < 0:
            raise ValueError("ack_recovery_s must be >= 0")


FaultEvent = Union[ThrottleOnset, NodeCrash, FabricDegradation]


@dataclasses.dataclass(frozen=True)
class FaultTimeline:
    """A static fault base plus mid-run fault events.

    The degenerate case — no events — behaves exactly like the static
    :class:`FaultModel` it wraps, so existing static experiments are a
    subset of timeline experiments.
    """

    base: FaultModel = NO_FAULTS
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for e in events:
            if not isinstance(e, (ThrottleOnset, NodeCrash, FabricDegradation)):
                raise TypeError(f"unsupported fault event {e!r}")
        crashed = [e.node for e in events if isinstance(e, NodeCrash)]
        if len(set(crashed)) != len(crashed):
            raise ValueError(f"a node can only crash once; got crashes on {crashed}")
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.step))
        )

    @classmethod
    def static(cls, model: FaultModel = NO_FAULTS) -> "FaultTimeline":
        """The degenerate timeline: static faults only."""
        return cls(base=model)

    @property
    def is_static(self) -> bool:
        return not self.events

    # -- queries the resilient driver runs per epoch -------------------- #

    def throttle_onsets_in(self, step_lo: int, step_hi: int) -> List[ThrottleOnset]:
        """Throttle onsets firing in ``[step_lo, step_hi)``."""
        return [
            e
            for e in self.events
            if isinstance(e, ThrottleOnset) and step_lo <= e.step < step_hi
        ]

    def crashes_in(self, step_lo: int, step_hi: int) -> List[NodeCrash]:
        """Fail-stop crashes firing in ``[step_lo, step_hi)``."""
        return [
            e
            for e in self.events
            if isinstance(e, NodeCrash) and step_lo <= e.step < step_hi
        ]

    def throttle_onsets_until(self, step: int) -> List[ThrottleOnset]:
        """All onsets at or before ``step`` (catch-up after a restore:
        a thermally throttled node stays throttled across job restarts)."""
        return [
            e
            for e in self.events
            if isinstance(e, ThrottleOnset) and e.step <= step
        ]

    def fault_model_at(self, step: int) -> FaultModel:
        """Effective static-equivalent fault model during ``step``.

        Folds any active :class:`FabricDegradation` window into the base
        model's ACK parameters (worst active window wins).
        """
        prob = self.base.ack_loss_prob
        rec = self.base.ack_recovery_s
        changed = False
        for e in self.events:
            if isinstance(e, FabricDegradation) and e.step <= step < e.end_step:
                prob = max(prob, e.ack_loss_prob)
                if e.ack_recovery_s is not None:
                    rec = max(rec, e.ack_recovery_s)
                changed = True
        if not changed:
            return self.base
        return dataclasses.replace(
            self.base, ack_loss_prob=prob, ack_recovery_s=rec
        )


# --------------------------------------------------------------------- #
# Unreliable transport: loss / duplication / reorder + retransmission
# --------------------------------------------------------------------- #


class TransportExhaustedError(RuntimeError):
    """A message (or migration transfer) exhausted its retry budget.

    At the discrete-event layer this aborts the simulated program (the
    fabric is effectively partitioned for that link); at the epoch-engine
    layer :class:`repro.engine.TransportHook` catches the equivalent
    condition and rolls the redistribution back instead.
    """


@dataclasses.dataclass(frozen=True)
class MigrationTransportSample:
    """Sampled transport behaviour of one bulk block migration.

    Produced by :meth:`TransportFaultModel.sample_migration`: a
    deterministic (given the RNG state) draw of how many copies were
    dropped, retransmitted, duplicated, and reordered while migrating
    ``attempted`` blocks, plus the timeout/backoff stall of the slowest
    transfer and the number of transfers that exhausted the retry budget.
    """

    attempted: int = 0
    retransmits: int = 0
    drops: int = 0
    duplicates: int = 0        #: duplicate copies suppressed at receivers
    reorders: int = 0          #: copies delivered out of order (resequenced)
    stall_s: float = 0.0       #: timeout/backoff stall of the critical transfer
    failed: int = 0            #: transfers that exhausted the retry budget

    @property
    def exhausted(self) -> bool:
        return self.failed > 0


@dataclasses.dataclass(frozen=True)
class TransportFaultModel:
    """Per-link unreliable-fabric behaviour plus the retransmit protocol.

    The paper spent weeks pruning unhealthy nodes and tuning MVAPICH2/PSM
    retransmission before its telemetry could be trusted (§III); this
    model makes the simulated fabric *lossy* so that the resilience stack
    can be exercised against partial failure of the data path, not just
    slow hardware.

    Attributes
    ----------
    loss_prob:
        Per-copy probability that a remote message (data or its ACK) is
        dropped on the wire.
    duplicate_prob:
        Per-delivered-copy probability the fabric delivers it twice
        (receivers suppress duplicates by sequence number).
    reorder_prob:
        Per-copy probability the copy is delayed by ``reorder_delay_s``,
        potentially arriving after its successors (receivers restore
        per-channel order via a resequencing buffer).
    reorder_delay_s:
        Extra latency applied to a reordered copy.
    ack_timeout_s:
        Initial retransmission timeout; doubles (``backoff_factor``) on
        every unacknowledged attempt.
    backoff_factor:
        Exponential-backoff multiplier on the retransmission timeout.
    max_retries:
        Retransmissions allowed per message before the transfer is
        declared failed (``max_retries + 1`` attempts total).
    bad_links:
        Unordered node-id pairs whose link multiplies ``loss_prob`` by
        ``bad_link_factor`` (the paper's flaky-cable scenario).
    bad_link_factor:
        Loss multiplier on ``bad_links`` (capped so delivery stays
        possible).
    seed:
        Seed of the dedicated transport RNG stream, kept separate from
        the compute/measurement streams so enabling transport faults
        never perturbs them.
    """

    loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay_s: float = 250.0e-6
    ack_timeout_s: float = 2.0e-3
    backoff_factor: float = 2.0
    max_retries: int = 6
    bad_links: Tuple[Tuple[int, int], ...] = ()
    bad_link_factor: float = 10.0
    seed: int = 777

    _LINK_LOSS_CAP = 0.99

    def __post_init__(self) -> None:
        for name in ("loss_prob", "duplicate_prob", "reorder_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        for name in ("reorder_delay_s", "ack_timeout_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.bad_link_factor < 1.0:
            raise ValueError("bad_link_factor must be >= 1")
        links = tuple(
            (min(int(a), int(b)), max(int(a), int(b))) for a, b in self.bad_links
        )
        for a, b in links:
            if a < 0:
                raise ValueError(f"node ids must be >= 0, got link ({a}, {b})")
        object.__setattr__(self, "bad_links", links)
        if not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError("seed must be >= 0 (numpy Generator requirement)")

    @property
    def is_active(self) -> bool:
        """Whether any fault rate is nonzero (rate 0 = today's fabric)."""
        return (
            self.loss_prob > 0.0
            or self.duplicate_prob > 0.0
            or self.reorder_prob > 0.0
        )

    def link_loss_prob(self, node_a: int, node_b: int) -> float:
        """Per-copy loss probability on the (node_a, node_b) link."""
        p = self.loss_prob
        if self.bad_links:
            key = (min(int(node_a), int(node_b)), max(int(node_a), int(node_b)))
            if key in self.bad_links:
                p = min(p * self.bad_link_factor, self._LINK_LOSS_CAP)
        return p

    def attempt_failure_prob(self, node_a: int, node_b: int) -> float:
        """Probability one attempt fails: the data copy *or* its ACK lost."""
        p = self.link_loss_prob(node_a, node_b)
        return 1.0 - (1.0 - p) * (1.0 - p)

    def retry_stall_s(self, n_timeouts: np.ndarray | int) -> np.ndarray | float:
        """Total timeout/backoff stall after ``n_timeouts`` expired timers.

        Geometric series ``rto * (b^n - 1) / (b - 1)`` (or ``rto * n``
        when the backoff factor is 1).
        """
        n = np.asarray(n_timeouts, dtype=np.float64)
        if self.backoff_factor == 1.0:
            out = self.ack_timeout_s * n
        else:
            b = self.backoff_factor
            out = self.ack_timeout_s * (np.power(b, n) - 1.0) / (b - 1.0)
        return out if out.ndim else float(out)

    def sample_migration(
        self,
        src_nodes: np.ndarray,
        dst_nodes: np.ndarray,
        rng: np.random.Generator,
    ) -> MigrationTransportSample:
        """Sample the transport behaviour of one bulk migration.

        One transfer per migrating block, each crossing the
        ``(src_node, dst_node)`` link once per attempt.  Per transfer the
        number of attempts needed is geometric in the per-attempt failure
        probability (data copy or ACK lost); a transfer needing more than
        ``max_retries + 1`` attempts has exhausted its budget and counts
        as *failed* — the caller rolls the redistribution back.  The
        stall charge is the slowest single transfer's accumulated
        timeout/backoff wait (transfers overlap across ranks).
        """
        src = np.asarray(src_nodes, dtype=np.int64)
        dst = np.asarray(dst_nodes, dtype=np.int64)
        n = int(src.shape[0])
        if n == 0 or not self.is_active:
            return MigrationTransportSample(attempted=n)
        q = np.array(
            [self.attempt_failure_prob(a, b) for a, b in zip(src, dst)],
            dtype=np.float64,
        )
        budget = self.max_retries + 1
        if np.any(q > 0.0):
            needed = rng.geometric(np.maximum(1.0 - q, 1e-12))
        else:
            needed = np.ones(n, dtype=np.int64)
        failed_mask = needed > budget
        attempts = np.minimum(needed, budget)
        retransmits = int((attempts - 1).sum())
        n_failed = int(failed_mask.sum())
        drops = retransmits + n_failed
        total_attempts = int(attempts.sum())
        duplicates = (
            int(rng.binomial(total_attempts, self.duplicate_prob))
            if self.duplicate_prob > 0.0
            else 0
        )
        reorders = (
            int(rng.binomial(total_attempts, self.reorder_prob))
            if self.reorder_prob > 0.0
            else 0
        )
        # A failed transfer waits out every timeout in its budget; a
        # successful one waits one timeout per retransmission.
        timeouts = attempts - 1 + failed_mask.astype(np.int64)
        stall_s = float(np.max(self.retry_stall_s(timeouts))) if n else 0.0
        return MigrationTransportSample(
            attempted=n,
            retransmits=retransmits,
            drops=drops,
            duplicates=duplicates,
            reorders=reorders,
            stall_s=stall_s,
            failed=n_failed,
        )


#: A perfectly reliable fabric: every copy delivered exactly once.
NO_TRANSPORT_FAULTS = TransportFaultModel()

#: ``parse_transport_spec`` key → (field, converter).
_TRANSPORT_SPEC_KEYS = {
    "loss": ("loss_prob", float),
    "dup": ("duplicate_prob", float),
    "reorder": ("reorder_prob", float),
    "reorder_delay": ("reorder_delay_s", float),
    "timeout": ("ack_timeout_s", float),
    "backoff": ("backoff_factor", float),
    "retries": ("max_retries", int),
    "bad_link_factor": ("bad_link_factor", float),
    "seed": ("seed", int),
}


def parse_transport_spec(spec: str) -> TransportFaultModel:
    """Parse a CLI transport-fault spec into a :class:`TransportFaultModel`.

    Format: comma-separated ``key=value`` pairs, e.g.
    ``"loss=0.05,dup=0.01,reorder=0.02,retries=4,seed=11"``.  Keys:
    ``loss``, ``dup``, ``reorder``, ``reorder_delay``, ``timeout``,
    ``backoff``, ``retries``, ``bad_link_factor``, ``seed``.
    """
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad transport spec item {part!r}: expected key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _TRANSPORT_SPEC_KEYS:
            raise ValueError(
                f"unknown transport spec key {key!r}; "
                f"valid: {sorted(_TRANSPORT_SPEC_KEYS)}"
            )
        field, conv = _TRANSPORT_SPEC_KEYS[key]
        try:
            kwargs[field] = conv(raw.strip())
        except ValueError as exc:
            raise ValueError(f"bad value for {key!r}: {raw!r}") from exc
    return TransportFaultModel(**kwargs)
