"""Fail-slow hardware and fabric fault injection (paper §IV-A, Fig. 1b).

Faults here are the *causes* the paper had to diagnose before placement
work could begin:

* **Thermal throttling** — whole nodes slow down by ~4x; with 16 ranks
  per node the telemetry shows slowdowns "in clusters of 16" (Fig. 2).
* **ACK-loss recovery stalls** — the fabric occasionally misses an
  acknowledgment and the driver's recovery path blocks the *sender* in
  ``MPI_Wait`` even though the receiver already has the data (Fig. 1b).

Two layers of injection:

* :class:`FaultModel` — *static* faults present from job start (the
  paper's pre-run health-check scenario);
* :class:`FaultTimeline` — a static base plus *events* that onset
  mid-run: :class:`ThrottleOnset` (a node starts throttling at a given
  step), :class:`NodeCrash` (fail-stop node loss), and
  :class:`FabricDegradation` (a transient window of elevated ACK loss).
  A timeline with no events degenerates exactly to its static base.

Injection is deterministic given the seed so experiments are exactly
reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

import numpy as np

from .cluster import Cluster

__all__ = [
    "FaultModel",
    "NO_FAULTS",
    "ThrottleOnset",
    "NodeCrash",
    "FabricDegradation",
    "FaultEvent",
    "FaultTimeline",
]


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Configured fault injection for a simulated run.

    Attributes
    ----------
    throttled_node_fraction:
        Fraction of nodes thermally throttled at job start.
    ack_loss_prob:
        Per remote-message probability of a missing ACK.
    ack_recovery_s:
        Sender stall caused by one recovery event (when the drain queue
        is disabled).  The paper observed multi-millisecond spikes on
        microsecond-scale messages.
    seed:
        Seed for fault-site selection.
    """

    throttled_node_fraction: float = 0.0
    ack_loss_prob: float = 0.0
    ack_recovery_s: float = 5.0e-3
    seed: int = 12345

    def __post_init__(self) -> None:
        # Seed/fraction interactions are validated here, in one place:
        # node selection below is a deterministic function of (seed,
        # fraction, n_nodes), so both must be well-formed together.
        if not 0.0 <= self.throttled_node_fraction <= 1.0:
            raise ValueError("throttled_node_fraction must be in [0, 1]")
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.ack_recovery_s < 0:
            raise ValueError("ack_recovery_s must be >= 0")
        if not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError("seed must be >= 0 (numpy Generator requirement)")

    def throttled_node_ids(self, n_nodes: int) -> List[int]:
        """Deterministic fault-site selection for a cluster of ``n_nodes``.

        At least one node is selected whenever the fraction is positive
        (a tiny cluster still exhibits the fault), never more than
        ``n_nodes``.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.throttled_node_fraction == 0.0:
            return []
        rng = np.random.default_rng(self.seed)
        n_bad = int(round(self.throttled_node_fraction * n_nodes))
        n_bad = min(max(n_bad, 1), n_nodes)
        bad = rng.choice(n_nodes, size=n_bad, replace=False)
        return sorted(int(b) for b in bad)

    def apply_to_cluster(self, cluster: Cluster) -> Cluster:
        """Throttle the selected fraction of nodes (deterministic)."""
        bad = self.throttled_node_ids(cluster.n_nodes)
        if not bad:
            return cluster
        return cluster.throttle_nodes(bad)

    def ack_stall_expectation(
        self, remote_sends_per_rank: np.ndarray, drain_queue: bool
    ) -> np.ndarray:
        """Expected per-rank sender stall per step from ACK recovery.

        With the drain queue enabled the stall is eliminated (requests
        drain in the background); otherwise each remote send stalls its
        sender with probability ``ack_loss_prob`` for ``ack_recovery_s``.
        """
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros_like(np.asarray(remote_sends_per_rank, dtype=np.float64))
        return (
            np.asarray(remote_sends_per_rank, dtype=np.float64)
            * self.ack_loss_prob
            * self.ack_recovery_s
        )

    def sample_ack_stalls(
        self,
        remote_sends_per_rank: np.ndarray,
        drain_queue: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sampled per-rank sender stall for one step (spiky, Fig. 1b).

        Binomial number of recovery events per rank; each event stalls
        the sender the full recovery time — so most steps see zero and a
        few see multi-millisecond spikes, reproducing the telemetry
        signature rather than its mean.
        """
        sends = np.asarray(remote_sends_per_rank)
        if drain_queue or self.ack_loss_prob == 0.0:
            return np.zeros(sends.shape[0], dtype=np.float64)
        events = rng.binomial(np.maximum(sends, 0).astype(np.int64), self.ack_loss_prob)
        return events.astype(np.float64) * self.ack_recovery_s


#: A healthy cluster and fabric.
NO_FAULTS = FaultModel()


# --------------------------------------------------------------------- #
# Mid-run fault events
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class ThrottleOnset:
    """Thermal throttling that *begins* mid-run on specific nodes.

    ``nodes`` are original (job-start) node ids; the resilient driver
    maps them through evictions.  ``factor`` overrides the machine's
    default throttle factor when given.
    """

    step: int
    nodes: Tuple[int, ...]
    factor: float | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("onset step must be >= 0")
        nodes = tuple(int(n) for n in self.nodes)
        if not nodes:
            raise ValueError("ThrottleOnset needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node ids in {nodes}")
        if any(n < 0 for n in nodes):
            raise ValueError(f"node ids must be >= 0, got {nodes}")
        object.__setattr__(self, "nodes", nodes)
        if self.factor is not None and self.factor < 1.0:
            raise ValueError("throttle factor must be >= 1")


@dataclasses.dataclass(frozen=True)
class NodeCrash:
    """Fail-stop loss of one node at a given step (kills the job)."""

    step: int
    node: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("crash step must be >= 0")
        if self.node < 0:
            raise ValueError("node id must be >= 0")


@dataclasses.dataclass(frozen=True)
class FabricDegradation:
    """A transient window of elevated fabric ACK loss.

    Active for steps in ``[step, end_step)``.  ``ack_recovery_s`` of
    ``None`` keeps the base model's recovery time.
    """

    step: int
    end_step: int
    ack_loss_prob: float
    ack_recovery_s: float | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("window start step must be >= 0")
        if self.end_step <= self.step:
            raise ValueError(
                f"window [{self.step}, {self.end_step}) is empty or inverted"
            )
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.ack_recovery_s is not None and self.ack_recovery_s < 0:
            raise ValueError("ack_recovery_s must be >= 0")


FaultEvent = Union[ThrottleOnset, NodeCrash, FabricDegradation]


@dataclasses.dataclass(frozen=True)
class FaultTimeline:
    """A static fault base plus mid-run fault events.

    The degenerate case — no events — behaves exactly like the static
    :class:`FaultModel` it wraps, so existing static experiments are a
    subset of timeline experiments.
    """

    base: FaultModel = NO_FAULTS
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for e in events:
            if not isinstance(e, (ThrottleOnset, NodeCrash, FabricDegradation)):
                raise TypeError(f"unsupported fault event {e!r}")
        crashed = [e.node for e in events if isinstance(e, NodeCrash)]
        if len(set(crashed)) != len(crashed):
            raise ValueError(f"a node can only crash once; got crashes on {crashed}")
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.step))
        )

    @classmethod
    def static(cls, model: FaultModel = NO_FAULTS) -> "FaultTimeline":
        """The degenerate timeline: static faults only."""
        return cls(base=model)

    @property
    def is_static(self) -> bool:
        return not self.events

    # -- queries the resilient driver runs per epoch -------------------- #

    def throttle_onsets_in(self, step_lo: int, step_hi: int) -> List[ThrottleOnset]:
        """Throttle onsets firing in ``[step_lo, step_hi)``."""
        return [
            e
            for e in self.events
            if isinstance(e, ThrottleOnset) and step_lo <= e.step < step_hi
        ]

    def crashes_in(self, step_lo: int, step_hi: int) -> List[NodeCrash]:
        """Fail-stop crashes firing in ``[step_lo, step_hi)``."""
        return [
            e
            for e in self.events
            if isinstance(e, NodeCrash) and step_lo <= e.step < step_hi
        ]

    def throttle_onsets_until(self, step: int) -> List[ThrottleOnset]:
        """All onsets at or before ``step`` (catch-up after a restore:
        a thermally throttled node stays throttled across job restarts)."""
        return [
            e
            for e in self.events
            if isinstance(e, ThrottleOnset) and e.step <= step
        ]

    def fault_model_at(self, step: int) -> FaultModel:
        """Effective static-equivalent fault model during ``step``.

        Folds any active :class:`FabricDegradation` window into the base
        model's ACK parameters (worst active window wins).
        """
        prob = self.base.ack_loss_prob
        rec = self.base.ack_recovery_s
        changed = False
        for e in self.events:
            if isinstance(e, FabricDegradation) and e.step <= step < e.end_step:
                prob = max(prob, e.ack_loss_prob)
                if e.ack_recovery_s is not None:
                    rec = max(rec, e.ack_recovery_s)
                changed = True
        if not changed:
            return self.base
        return dataclasses.replace(
            self.base, ack_loss_prob=prob, ack_recovery_s=rec
        )
