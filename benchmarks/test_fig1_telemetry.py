"""Fig. 1 — telemetry challenges: correlation (top) and spikes (bottom).

Top: poor correlation between work (message counts) and communication
time on the untuned stack; tuning restores it.  Bottom: fine-grained
telemetry reveals MPI_Wait spikes that inflate average collective time
~3x; the drain queue removes them.
"""

from repro.bench import correlation_study, spike_study


def test_fig1_top_correlation(benchmark):
    result = benchmark.pedantic(
        lambda: correlation_study(n_ranks=128, n_steps=50),
        rounds=1, iterations=1,
    )
    print("\nFig 1 (top) — work<->comm-time correlation:")
    print(f"  untuned: r = {result['untuned']:+.3f}")
    print(f"  tuned  : r = {result['tuned']:+.3f}")
    # Shape: tuning turns a weak/absent correlation into a strong one.
    assert result["untuned"] < 0.5
    assert result["tuned"] > 0.6
    assert result["tuned"] - result["untuned"] > 0.3


def test_fig1_bottom_wait_spikes(benchmark):
    result = benchmark.pedantic(
        lambda: spike_study(n_ranks=128, n_steps=150),
        rounds=1, iterations=1,
    )
    nd, d = result["no_drain_queue"], result["drain_queue"]
    inflation = nd["mean_sync_s"] / d["mean_sync_s"]
    print("\nFig 1 (bottom) — ACK-loss MPI_Wait spikes:")
    print(f"  without drain queue: {nd['spikes']:.0f} spikes, "
          f"mean collective {nd['mean_sync_s'] * 1e3:.1f} ms, "
          f"p99 comm {nd['p99_comm_s'] * 1e3:.1f} ms")
    print(f"  with drain queue   : {d['spikes']:.0f} spikes, "
          f"mean collective {d['mean_sync_s'] * 1e3:.1f} ms")
    print(f"  collective-time inflation removed: {inflation:.1f}x (paper: ~3x)")
    # Shape: spikes present and expensive without the mitigation, gone with it.
    assert nd["spikes"] > 0
    assert d["spikes"] == 0
    assert inflation > 1.5
