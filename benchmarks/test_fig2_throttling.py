"""Fig. 2 — profiling data from runs affected by CPU throttling.

Compute times on throttled nodes are inflated ~4x in whole-node (16
rank) clusters, driving synchronization above 70% of runtime; pruning
the affected nodes recovers a multiple of the runtime (paper: 10 h ->
2.5 h, with >70% of the sick run spent synchronizing).
"""

from repro.bench import throttling_study


def test_fig2_throttling_and_pruning(benchmark):
    result = benchmark.pedantic(
        lambda: throttling_study(n_ranks=256, n_steps=30, throttled_fraction=0.15),
        rounds=1, iterations=1,
    )
    sick, ok, ratio = (
        result["throttled"],
        result["pruned"],
        result["speedup"]["runtime_ratio"],
    )
    print("\nFig 2 — thermal throttling:")
    print(f"  throttled run: sync = {sick['sync_fraction']:.0%} of runtime "
          f"(paper: >70%), wall = {sick['wall_s']:.1f}s")
    print(f"  detector localized {sick['detected_nodes']:.0f} / "
          f"{sick['true_bad_nodes']:.0f} bad nodes (clusters of 16 ranks)")
    print(f"  pruned run: sync = {ok['sync_fraction']:.0%}, "
          f"wall = {ok['wall_s']:.1f}s")
    print(f"  runtime recovery: {ratio:.1f}x (paper: ~4x, 10h -> 2.5h)")
    # Shape assertions.
    assert sick["sync_fraction"] > 0.55
    assert sick["detected_nodes"] == sick["true_bad_nodes"] > 0
    assert ok["sync_fraction"] < sick["sync_fraction"]
    assert ratio > 2.0
