"""Table I — Sedov Blast Wave problem configurations.

Verifies the geometric facts of Table I exactly (mesh sizes, 16^3
blocks, one initial block per rank) and regenerates the run statistics
(t_total, t_lb, n_initial, n_final) from the workload generator.  At
reduced scale the step counts are truncated but the geometry and the
block-growth shape (final ~ 2-6x initial through shell refinement) hold.
"""


from repro.amr import TABLE_I_CONFIGS
from repro.bench import format_table

from conftest import PAPER_SCALE, SEDOV_SCALES, shared_trajectory

PAPER_TABLE_I = {
    512: dict(t_total=30_590, t_lb=1_213, n_initial=512, n_final=2_080),
    1024: dict(t_total=43_088, t_lb=4_576, n_initial=1_024, n_final=3_824),
    2048: dict(t_total=43_042, t_lb=4_699, n_initial=2_048, n_final=4_848),
    4096: dict(t_total=53_459, t_lb=9_392, n_initial=4_096, n_final=8_968),
}


def test_table1_geometry_exact(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The table's geometric columns are reproduced exactly."""
    for ranks, cfg in TABLE_I_CONFIGS.items():
        assert cfg.block_cells == 16
        assert cfg.n_root_blocks == ranks           # one block per rank
        assert cfg.t_total == PAPER_TABLE_I[ranks]["t_total"]


def test_table1_run_statistics(benchmark):
    def generate():
        rows = []
        for ranks in SEDOV_SCALES:
            traj = shared_trajectory(ranks)
            rows.append(
                dict(
                    ranks=ranks,
                    t_total=sum(e.n_steps for e in traj),
                    t_lb=len(traj) - 1,
                    n_initial=len(traj[0].blocks),
                    n_final=len(traj[-1].blocks),
                )
            )
        return rows

    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    print("\nTable I — measured run statistics "
          f"({'paper' if PAPER_SCALE else 'reduced'} scale):")
    print(format_table(
        ["ranks", "t_total", "t_lb", "n_initial", "n_final", "paper n_final"],
        [[r["ranks"], r["t_total"], r["t_lb"], r["n_initial"], r["n_final"],
          PAPER_TABLE_I[r["ranks"]]["n_final"]] for r in rows],
    ))
    for r in rows:
        paper = PAPER_TABLE_I[r["ranks"]]
        # One block per rank initially — exact.
        assert r["n_initial"] == paper["n_initial"]
        # Refinement grows the mesh toward a few blocks per rank; the
        # paper lands at 2.2-4.1 blocks/rank, we accept 1.5-8.
        growth = r["n_final"] / r["n_initial"]
        assert 1.5 < growth < 8.0
        # Load balancing is invoked on a few-to-tens-of-steps cadence.
        assert r["t_lb"] >= r["t_total"] // 50
