"""Fig. 7a — commbench: boundary round latency vs placement locality.

Locality modestly affects round latency; at small scale high locality
(low X) is no worse, while at larger scales strict locality can become
counterproductive as it concentrates face-neighbor traffic on a few
ranks (the paper's surprising U-shape).  Differences are sub-millisecond
on a multi-millisecond base, as in the paper (~±0.5 ms).
"""

import pytest

from repro.bench import CommbenchConfig, run_commbench

from conftest import COMMBENCH_SCALES, PAPER_SCALE


@pytest.mark.parametrize("n_ranks", COMMBENCH_SCALES)
def test_fig7a_round_latency_vs_locality(benchmark, n_ranks):
    cfg = CommbenchConfig(
        n_ranks=n_ranks,
        n_meshes=10 if PAPER_SCALE else 4,
        n_rounds=100 if PAPER_SCALE else 30,
    )
    result = benchmark.pedantic(
        lambda: run_commbench(cfg), rounds=1, iterations=1
    )
    print(f"\nFig 7a @ {n_ranks} ranks: {result.series()}")
    print(f"  best X = {result.best_x():g}, "
          f"discarded {result.discarded_rounds} rounds > 10 ms")

    lat = result.mean_latency_s
    # Latencies are in the right regime (sub-cutoff milliseconds).
    assert (lat > 0.2e-3).all()
    assert (lat < cfg.outlier_cutoff_s).all()
    # Locality effects are modest (paper: ±0.5 ms on a few-ms base).
    assert lat.max() - lat.min() < 0.5 * lat.mean()
    # CPL0 (max locality) is never the *worst* at small scale, and the
    # extremes never beat the best by much anywhere.
    best = lat.min()
    assert lat[0] < best * 1.4
    assert lat[-1] < best * 1.4
