"""Extension studies beyond the paper's evaluation.

1. Hilbert vs Z-order SFC under the baseline/CDP placements — how much
   of the locality story is curve-specific (§V-A1 notes Z-order falls
   out of the octree; Hilbert is the standard stricter-locality
   alternative).
2. Graph-partitioner placement (parMETIS/Zoltan-style) vs CPLX
   end-to-end — the §VIII claim that edge cut is a poor proxy for
   runtime communication cost, plus the placement-budget comparison.
3. Zonal placement at large scale — overhead reduction vs quality.
4. Redistribution triggers — skipping unprofitable rebalances.
"""


import numpy as np

from repro.amr import ImbalanceTrigger
from repro.bench import make_costs, random_refined_mesh
from repro.core import (
    CPLX,
    GraphPartitionPolicy,
    ZonalPolicy,
    edge_cut,
    get_policy,
    load_stats,
    measure_policy,
    message_stats,
)
from repro.mesh import hilbert_sort_blocks
from repro.simnet import BSPModel, Cluster, ExchangePattern


def test_extension_hilbert_vs_morton(benchmark):
    def run():
        rng = np.random.default_rng(0)
        mesh = random_refined_mesh(256, 2.0, rng)
        graph = mesh.neighbor_graph
        n = mesh.n_blocks
        cluster = Cluster(n_ranks=256)

        def contiguous_assignment(order_blocks):
            pos = {b: i for i, b in enumerate(order_blocks)}
            rank_of_pos = np.minimum(
                (np.arange(n) * 256) // n, 255
            )
            a = np.empty(n, dtype=np.int64)
            for i, b in enumerate(graph.blocks):
                a[i] = rank_of_pos[pos[b]]
            return a

        morton = contiguous_assignment(mesh.blocks)
        hilbert = contiguous_assignment(hilbert_sort_blocks(mesh.blocks))
        out = {}
        for name, a in (("morton", morton), ("hilbert", hilbert)):
            ms = message_stats(graph, a, cluster.ranks_per_node)
            out[name] = {
                "intra_rank": ms.intra_rank,
                "remote_frac": ms.remote_fraction,
                "cut": edge_cut(graph, a),
            }
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension 1 — SFC curve choice (contiguous split, 256 ranks):")
    for name, d in result.items():
        print(f"  {name:8s} co-located pairs={d['intra_rank']:5d}  "
              f"remote share={d['remote_frac']:.0%}  edge cut={d['cut']:.3g}")
    # Hilbert preserves at least as much locality as Z-order.
    assert result["hilbert"]["intra_rank"] >= result["morton"]["intra_rank"]
    # But the majority-remote reality (Fig. 6c's 64%) holds for both:
    # dimensionality reduction, not the curve, is the limiting factor.
    assert result["hilbert"]["remote_frac"] > 0.5
    assert result["morton"]["remote_frac"] > 0.5


def test_extension_graph_partitioner_end_to_end(benchmark):
    def run():
        rng = np.random.default_rng(1)
        mesh = random_refined_mesh(128, 2.0, rng)
        graph = mesh.neighbor_graph
        costs = rng.lognormal(0.0, 0.4, size=mesh.n_blocks)
        cluster = Cluster(n_ranks=128)
        out = {}
        for name, policy in (
            ("graph-partition", GraphPartitionPolicy(graph)),
            ("cplx:50", get_policy("cplx:50")),
        ):
            res = policy.place(costs, 128)
            pattern = ExchangePattern.from_mesh(graph, res.assignment, costs, cluster)
            model = BSPModel(cluster, seed=3, exchange_rounds=4)
            _, wall = model.simulate_steps(pattern, 50, max_samples=8)
            out[name] = {
                "cut": edge_cut(graph, res.assignment),
                "makespan": load_stats(costs, res.assignment, 128).makespan,
                "wall": wall,
                "placement_ms": res.elapsed_s * 1e3,
            }
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension 2 — edge-cut partitioner vs CPLX (end-to-end, 128 ranks):")
    for name, d in result.items():
        print(f"  {name:16s} cut={d['cut']:9.3g}  makespan={d['makespan']:7.3f}  "
              f"simulated wall={d['wall']:8.2f}s  placement={d['placement_ms']:7.2f}ms")
    gp, cx = result["graph-partition"], result["cplx:50"]
    # The partitioner wins its own objective...
    assert gp["cut"] < cx["cut"]
    # ...but loses end-to-end: edge cut is a poor proxy for runtime
    # (the paper's §VIII claim).
    assert gp["wall"] > cx["wall"]


def test_extension_zonal_overhead(benchmark):
    """Zonal decomposition vs a *global* (unchunked) CPLX solve — the
    paper's hierarchical-balancing comparison.  (CPLX's own internal
    chunking already captures most of the benefit; the zonal wrapper
    additionally confines the LPT stage.)"""
    n_ranks = 4096
    costs = make_costs("exponential", int(n_ranks * 2.25), seed=2)
    global_cplx = lambda: CPLX(x_percent=50, ranks_per_chunk=10**9)  # noqa: E731

    def run():
        zonal = measure_policy(
            ZonalPolicy(lambda: CPLX(x_percent=50), ranks_per_zone=512),
            costs, n_ranks, repeats=2,
        )
        flat = measure_policy(global_cplx(), costs, n_ranks, repeats=2)
        za = ZonalPolicy(lambda: CPLX(x_percent=50), ranks_per_zone=512).compute(
            costs, n_ranks
        )
        fa = global_cplx().compute(costs, n_ranks)
        return {
            "zonal_ms": zonal.mean_s * 1e3,
            "flat_ms": flat.mean_s * 1e3,
            "zonal_makespan": load_stats(costs, za, n_ranks).makespan,
            "flat_makespan": load_stats(costs, fa, n_ranks).makespan,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nExtension 3 — zonal vs global CPL50 @ {n_ranks} ranks:")
    print(f"  global CPL50: {r['flat_ms']:8.2f} ms, makespan {r['flat_makespan']:.3f}")
    print(f"  zonal  CPL50: {r['zonal_ms']:8.2f} ms, makespan {r['zonal_makespan']:.3f}")
    assert r["zonal_ms"] < r["flat_ms"]
    assert r["zonal_makespan"] <= r["flat_makespan"] * 1.5


def test_extension_redistribution_trigger(benchmark):
    """Cost/benefit triggering skips unprofitable rebalances."""

    def run():
        rng = np.random.default_rng(4)
        trig = ImbalanceTrigger(
            step_seconds_per_cost=0.1, redistribution_cost_s=0.13,
            horizon_steps=25, hysteresis=1.5,
        )
        fired = skipped = 0
        wasted_without_trigger = 0.0
        for epoch in range(40):
            # Alternate nearly-balanced epochs (round-robin placement of
            # near-uniform costs) with imbalanced ones (random placement
            # of high-variance costs).
            from repro.core import load_stats, lpt_assign

            if epoch % 2:
                # Freshly rebalanced placement whose costs drifted ~3%:
                # rebalancing again should NOT pay off.
                base = rng.lognormal(0.0, 0.4, size=256)
                costs = base * rng.lognormal(0.0, 0.03, size=256)
                assignment = lpt_assign(base, 64)
            else:
                # Stale random placement of high-variance costs: should fire.
                costs = rng.lognormal(0.0, 0.6, size=256)
                assignment = rng.integers(0, 64, size=256)
            # Compare against what the balancer could actually achieve
            # (LPT), not the unreachable area bound.
            achievable = load_stats(costs, lpt_assign(costs, 64), 64).makespan
            d = trig.evaluate(costs, assignment, 64, achievable_makespan=achievable)
            if d.rebalance:
                fired += 1
            else:
                skipped += 1
                # Rebalancing here would have cost more than it saved.
                wasted_without_trigger += max(
                    0.0, d.estimated_cost_s - d.expected_benefit_s
                )
        return fired, skipped, wasted_without_trigger

    fired, skipped, wasted = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension 4 — redistribution trigger over 40 epochs:")
    print(f"  rebalanced: {fired}, skipped: {skipped}, "
          f"avoided waste: {wasted:.2f}s")
    assert fired > 0 and skipped > 0  # discriminates, not constant


def test_extension_des_cross_validation(benchmark):
    """The vectorized BSP model agrees with message-level discrete-event
    execution — the fidelity evidence behind using the fast model for
    the 50k-step Sedov sweeps."""
    from repro.simnet import compare_models

    def run():
        rng = np.random.default_rng(7)
        out = {}
        for policy in ("baseline", "lpt"):
            mesh = random_refined_mesh(32, 2.0, rng)
            costs = rng.lognormal(0.0, 0.3, size=mesh.n_blocks)
            a = get_policy(policy).place(costs, 32).assignment
            cmp = compare_models(
                mesh.neighbor_graph, a, costs, Cluster(n_ranks=32), n_steps=3
            )
            out[policy] = cmp
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension 5 — DES vs vectorized model (32 ranks):")
    for policy, cmp in result.items():
        print(f"  {policy:9s} DES {cmp.des_wall_s:7.4f}s  "
              f"vectorized {cmp.vectorized_wall_s:7.4f}s  "
              f"gap {cmp.relative_gap:6.1%}")
    for cmp in result.values():
        assert cmp.relative_gap < 0.15


def test_extension_switch_topology(benchmark):
    """Two-tier fat-tree topology: cross-switch hops penalize scattered
    placements more than contiguous ones."""
    from repro.simnet import BSPModel, ExchangePattern, FabricSpec

    def run():
        rng = np.random.default_rng(8)
        mesh = random_refined_mesh(128, 2.0, rng)
        costs = np.ones(mesh.n_blocks)
        cluster = Cluster(n_ranks=128, nodes_per_switch=2)
        fabric = FabricSpec(cross_switch_extra_s=200e-6)
        out = {}
        for policy in ("cplx:0", "cplx:100"):
            a = get_policy(policy).place(costs, 128).assignment
            pattern = ExchangePattern.from_mesh(
                mesh.neighbor_graph, a, costs, cluster, fabric
            )
            model = BSPModel(cluster, fabric=fabric, seed=9, exchange_rounds=1)
            _, wall = model.simulate_steps(pattern, 30, max_samples=6)
            cross = (
                np.asarray(cluster.switch_of(pattern.pair_src))
                != np.asarray(cluster.switch_of(pattern.pair_dst))
            ).sum()
            out[policy] = {"wall": wall, "cross_switch_pairs": int(cross)}
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension 6 — two-tier switch topology (128 ranks, 4 switches):")
    for policy, d in result.items():
        print(f"  {policy:9s} cross-switch rank pairs={d['cross_switch_pairs']:4d}  "
              f"round wall={d['wall'] * 1e3:7.2f} ms (30 rounds)")
    # Locality-destroying placement crosses switches more.
    assert (
        result["cplx:100"]["cross_switch_pairs"]
        > result["cplx:0"]["cross_switch_pairs"]
    )
