"""Fig. 3 — rankwise boundary communication across tuning stages.

Untuned -> send priority -> send priority + queue-size tuning: the
first stage removes the cascading send delays (big drop in across-rank
spread), the second removes shared-memory-queue service noise (big drop
in within-rank jitter), "clarifying the underlying telemetry structure".
"""

from repro.bench import reordering_study


def test_fig3_tuning_stages(benchmark):
    stages = benchmark.pedantic(
        lambda: reordering_study(n_ranks=128, n_steps=50),
        rounds=1, iterations=1,
    )
    print("\nFig 3 — rankwise comm variance by tuning stage:")
    for name, var in stages:
        print(f"  {name:22s} mean={var['mean'] * 1e3:8.2f} ms  "
              f"across-rank spread={var['across_rank_spread'] * 1e3:8.2f} ms  "
              f"jitter={var['mean_within_rank_jitter'] * 1e3:6.2f} ms")
    d = dict(stages)
    # Stage 2 (send priority) reduces spread and mean comm time.
    assert d["send_priority"]["across_rank_spread"] < d["untuned"]["across_rank_spread"]
    assert d["send_priority"]["mean"] < d["untuned"]["mean"]
    # Stage 3 (queue tuning) further reduces step-to-step jitter.
    assert (
        d["send_priority+queue"]["mean_within_rank_jitter"]
        < 0.5 * d["send_priority"]["mean_within_rank_jitter"]
    )
