"""§V-B — LPT vs an exact solver.

The paper could not beat LPT with a commercial ILP solver given 200 s.
We reproduce the observation with an exact branch-and-bound: across
random AMR-like instances, LPT is within a few percent of proven
optimal (and within its 4/3 guarantee), at a tiny fraction of the cost.
"""

import numpy as np

from repro.core import load_stats, lpt_assign, solve_makespan_bnb


def _compare(n_instances: int = 25, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    ratios = []
    lpt_time = 0.0
    bnb_time = 0.0
    import time

    for _ in range(n_instances):
        n = int(rng.integers(12, 20))
        r = int(rng.integers(3, 6))
        costs = rng.exponential(1.0, size=n)
        t0 = time.perf_counter()
        a = lpt_assign(costs, r)
        lpt_time += time.perf_counter() - t0
        lpt_m = load_stats(costs, a, r).makespan
        res = solve_makespan_bnb(costs, r, time_limit_s=10.0)
        bnb_time += res.elapsed_s
        assert res.optimal
        ratios.append(lpt_m / res.makespan)
    return {
        "mean_ratio": float(np.mean(ratios)),
        "max_ratio": float(np.max(ratios)),
        "lpt_time_s": lpt_time,
        "bnb_time_s": bnb_time,
    }


def test_lpt_near_optimal(benchmark):
    stats = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print("\n§V-B — LPT vs exact branch-and-bound (25 instances):")
    print(f"  LPT / OPT makespan ratio: mean {stats['mean_ratio']:.4f}, "
          f"max {stats['max_ratio']:.4f}")
    print(f"  total time: LPT {stats['lpt_time_s'] * 1e3:.2f} ms vs "
          f"exact {stats['bnb_time_s'] * 1e3:.1f} ms")
    assert stats["max_ratio"] <= 4 / 3 + 1e-9       # Graham's guarantee
    assert stats["mean_ratio"] < 1.05               # empirically near-optimal
    assert stats["lpt_time_s"] < stats["bnb_time_s"]
