"""Ablations of the design choices DESIGN.md calls out.

1. CDP chunk-size restriction ({floor, ceil} only) vs the full O(n^2 r)
   DP: quality loss vs orders-of-magnitude cost difference.
2. CPLX's two-ended rank selection vs overloaded-only selection:
   rebalancing needs destination ranks.
3. Chunk granularity vs solution quality for chunked CDP.
4. Epoch-sampled BSP simulation vs full per-step simulation: the
   compression used for 50k-step runs does not change phase shapes.
"""

import time

import numpy as np

from repro.core import (
    CPLX,
    cdp_full,
    cdp_restricted,
    chunked_cdp_counts,
    counts_makespan,
    load_stats,
    lpt_assign,
    select_rebalance_ranks,
)
from repro.bench import make_costs
from repro.simnet import BSPModel, Cluster, ExchangePattern
from repro.bench import random_refined_mesh
from repro.core import get_policy


def test_ablation_cdp_restriction(benchmark):
    costs = make_costs("exponential", 600, seed=1)
    r = 128

    def run():
        t0 = time.perf_counter()
        restricted = cdp_restricted(costs, r)
        t_r = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = cdp_full(costs, r)
        t_f = time.perf_counter() - t0
        return (
            counts_makespan(costs, restricted),
            counts_makespan(costs, full),
            t_r,
            t_f,
        )

    m_r, m_f, t_r, t_f = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation 1 — CDP chunk-size restriction (600 blocks, 128 ranks):")
    print(f"  restricted: makespan {m_r:.3f} in {t_r * 1e3:8.2f} ms")
    print(f"  full DP   : makespan {m_f:.3f} in {t_f * 1e3:8.2f} ms "
          f"({t_f / t_r:.0f}x slower)")
    assert m_f <= m_r + 1e-9         # full can only be better
    assert m_r <= m_f * 1.8          # restriction loses a bounded factor
    assert t_f > 3 * t_r             # and is much cheaper


def test_ablation_cplx_two_ended_selection(benchmark):
    """Selecting only overloaded ranks leaves nowhere to move work."""
    costs = make_costs("power-law", 1024, seed=2)
    r = 256
    x = 25.0

    def run():
        base = CPLX(x_percent=0).compute(costs, r)
        loads = np.bincount(base, weights=costs, minlength=r)
        # Two-ended (the paper's design).
        both = select_rebalance_ranks(loads, x)
        # Overloaded-only variant (ablation).
        k = both.shape[0]
        top_only = np.argsort(-loads, kind="stable")[:k].astype(np.int64)

        def rebalanced(ranks):
            mask = np.isin(base, ranks)
            ids = np.nonzero(mask)[0]
            local = lpt_assign(costs[ids], ranks.shape[0])
            out = base.copy()
            out[ids] = ranks[local]
            return load_stats(costs, out, r).makespan

        return rebalanced(both), rebalanced(top_only), load_stats(
            costs, base, r
        ).makespan

    m_both, m_top, m_cdp = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation 2 — CPLX rank selection at X=25 (1024 blocks, 256 ranks):")
    print(f"  CDP start          : makespan {m_cdp:.3f}")
    print(f"  two-ended selection: makespan {m_both:.3f}")
    print(f"  overloaded-only    : makespan {m_top:.3f}")
    assert m_both < m_top  # destinations matter
    assert m_both < m_cdp


def test_ablation_chunk_granularity(benchmark):
    # 2.25 blocks/rank: a non-divisible count keeps the restricted DP's
    # floor/ceil choice meaningful (divisible counts make it trivial).
    # Scale chosen where the DP cost difference is decisive (the global
    # table is O(r * (n mod r)); chunking caps the per-solve extent).
    costs = make_costs("exponential", 18432, seed=3)
    r = 8192

    def run():
        out = {}
        for rpc in (512, 2048, 8192):
            t0 = time.perf_counter()
            counts = chunked_cdp_counts(costs, r, ranks_per_chunk=rpc)
            dt = time.perf_counter() - t0
            out[rpc] = (counts_makespan(costs, counts), dt)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation 3 — chunk granularity (18432 blocks, 8192 ranks):")
    global_m = results[8192][0]
    for rpc, (m, dt) in sorted(results.items()):
        print(f"  ranks_per_chunk={rpc:5d}: makespan {m:.3f} "
              f"({m / global_m:.3f}x global) in {dt * 1e3:7.2f} ms")
    # Finer chunks are decisively cheaper at scale and lose only a
    # bounded quality factor.
    assert results[512][1] < results[8192][1]
    assert results[512][0] <= global_m * 1.5


def test_ablation_epoch_sampling_fidelity(benchmark):
    """Sampling k steps/epoch and scaling matches per-step simulation."""
    rng = np.random.default_rng(4)
    mesh = random_refined_mesh(128, 2.0, rng)
    costs = rng.lognormal(0.0, 0.3, size=mesh.n_blocks)
    cluster = Cluster(n_ranks=128)
    assignment = get_policy("baseline").place(costs, 128).assignment
    pattern = ExchangePattern.from_mesh(mesh.neighbor_graph, assignment, costs, cluster)

    def run():
        full_model = BSPModel(cluster, seed=9)
        _, wall_full = full_model.simulate_steps(pattern, 200, max_samples=200)
        sampled_model = BSPModel(cluster, seed=9)
        _, wall_sampled = sampled_model.simulate_steps(pattern, 200, max_samples=4)
        return wall_full, wall_sampled

    wall_full, wall_sampled = benchmark.pedantic(run, rounds=1, iterations=1)
    err = abs(wall_sampled - wall_full) / wall_full
    print("\nAblation 4 — epoch sampling (200 steps, 128 ranks):")
    print(f"  per-step simulation : {wall_full:9.2f} s simulated")
    print(f"  4-sample compression: {wall_sampled:9.2f} s simulated "
          f"({err:.2%} deviation)")
    assert err < 0.05
