"""Fig. 6 — Sedov Blast Wave placement results (the headline figure).

(a) phase-decomposed total runtime per policy per scale: all CPLX
    variants beat baseline, intermediate X best, gains grow with scale;
(b) the comm/sync tradeoff, normalized to baseline: comm rises and sync
    falls monotonically with X;
(c) message locality: remote share grows with X; the baseline already
    routes a majority of messages across nodes.
"""

import pytest

from repro.bench import SedovSweepConfig, run_sedov_sweep

from conftest import PAPER_SCALE, SEDOV_SCALES, SEDOV_STEPS


@pytest.fixture(scope="module")
def sweep():
    config = SedovSweepConfig(
        scales=tuple(SEDOV_SCALES),
        paper_scale=PAPER_SCALE,
        steps=SEDOV_STEPS or 2_000,
    )
    return run_sedov_sweep(config)


def test_fig6a_runtime_by_phase(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print("\n" + sweep.fig6a_table())
    for scale in sweep.scales():
        base = sweep.at(scale, "baseline")
        fr = base.summary.phase_fractions()
        # Finding 1: compute + sync dominate; comm and lb minor.
        assert fr["compute"] + fr["sync"] > 0.80
        assert fr["comm"] < 0.15
        assert fr["lb"] < 0.10
        # Finding 2: every X beats baseline by a clear margin.
        for label in sweep.labels():
            if label == "baseline":
                continue
            assert sweep.reduction_vs_baseline(scale, label) > 0.08
        # Best variant lands in the paper's band (12% - ~35%).
        best = sweep.best_label(scale)
        red = sweep.reduction_vs_baseline(scale, best)
        print(f"  -> {scale} ranks: best {best}, reduction {red:.1%} "
              f"(paper: up to 21.6%)")
        assert 0.10 < red < 0.45
        # An intermediate X is within 5% of the best endpoint.
        mids = [sweep.at(scale, lab).wall_s for lab in ("CPL25", "CPL50", "CPL75")]
        ends = [sweep.at(scale, lab).wall_s for lab in ("CPL0", "CPL100")]
        assert min(mids) < min(ends) * 1.05

    # Impact grows (weakly) with scale.
    if len(sweep.scales()) > 1:
        reds = [
            sweep.reduction_vs_baseline(s, sweep.best_label(s))
            for s in sweep.scales()
        ]
        assert reds[-1] > reds[0] * 0.8  # non-collapsing trend


def test_fig6b_comm_sync_tradeoff(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print("\n" + sweep.fig6b_table())
    for scale in (sweep.scales()[0], sweep.scales()[-1]):
        base = sweep.at(scale, "baseline").summary.phase_rank_seconds
        comm = [
            sweep.at(scale, lab).summary.phase_rank_seconds["comm"] / base["comm"]
            for lab in ("CPL0", "CPL25", "CPL50", "CPL75", "CPL100")
        ]
        sync = [
            sweep.at(scale, lab).summary.phase_rank_seconds["sync"] / base["sync"]
            for lab in ("CPL0", "CPL25", "CPL50", "CPL75", "CPL100")
        ]
        # comm increases with X; sync decreases with X.
        assert all(b > a for a, b in zip(comm, comm[1:]))
        assert sync[-1] < sync[0]
        # Modest X captures most of the sync benefit (paper: X=25-50).
        assert sync[0] - sync[2] > 0.6 * (sync[0] - sync[-1])


def test_fig6c_message_locality(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print("\n" + sweep.fig6c_table())
    for scale in (sweep.scales()[0], sweep.scales()[-1]):
        fr = [
            sweep.at(scale, lab).remote_fraction
            for lab in ("CPL0", "CPL50", "CPL100")
        ]
        assert fr[0] < fr[1] < fr[2]
        # SFC dimensionality reduction: baseline majority-remote already
        # (paper: 64% at 4096 ranks).
        assert sweep.at(scale, "baseline").remote_fraction > 0.5
        # MPI-visible volume grows as memcpy pairs become messages.
        vis = [
            sweep.at(scale, lab).msg_local + sweep.at(scale, lab).msg_remote
            for lab in ("CPL0", "CPL100")
        ]
        assert vis[1] > vis[0]
