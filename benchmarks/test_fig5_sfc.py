"""Fig. 5 — octree, Z-order SFC, and contiguous rank assignment.

Reproduces the figure's structural claims on a 2D adaptively refined
mesh: mesh blocks correspond to octree leaves, sequential block IDs
follow a depth-first traversal identical to the Z-order curve, and the
baseline assigns contiguous ID ranges to ranks, preserving locality.
"""

import numpy as np

from repro.core import BaselinePolicy, contiguity_fraction, message_stats
from repro.mesh import (
    AmrMesh,
    RefinementTags,
    RootGrid,
    contiguous_ranges,
    morton_key,
    sfc_sort_blocks,
)


def _build_fig5_mesh() -> AmrMesh:
    mesh = AmrMesh(RootGrid((2, 2)), max_level=3)
    mesh.remesh(RefinementTags(refine={mesh.blocks[0]}))
    mesh.remesh(RefinementTags(refine={mesh.blocks[0]}))
    return mesh


def test_fig5_octree_sfc_structure(benchmark):
    mesh = benchmark.pedantic(_build_fig5_mesh, rounds=1, iterations=1)
    blocks = mesh.blocks
    print("\nFig 5 — octree + Z-order SFC example (2D):")
    print(f"  leaves: {len(blocks)}, levels: "
          f"{sorted(set(b.level for b in blocks))}")
    for bid, b in enumerate(blocks[:8]):
        print(f"  block id {bid}: level={b.level} coords={b.coords}")

    # DFS order == Z-order curve order.
    assert blocks == sfc_sort_blocks(blocks)
    max_level = max(b.level for b in blocks)
    keys = [morton_key(b, max_level) for b in blocks]
    assert keys == sorted(keys)

    # Contiguous ID ranges -> balanced counts + high locality.
    a = BaselinePolicy().place(np.ones(len(blocks)), 4).assignment
    counts = np.bincount(a, minlength=4)
    assert counts.max() - counts.min() <= 1
    # Each rank owns one contiguous ID range (Fig. 5's assignment rule).
    assert contiguous_ranges(a)
    assert contiguity_fraction(a) >= (len(blocks) - 4) / (len(blocks) - 1)
    ms = message_stats(mesh.neighbor_graph, a, ranks_per_node=2)
    print(f"  baseline on 4 ranks: counts={counts.tolist()}, "
          f"intra-rank pairs={ms.intra_rank}, cross-rank={ms.mpi_visible}")
    assert ms.intra_rank > 0  # locality actually captured
