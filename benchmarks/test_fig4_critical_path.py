"""Fig. 4 — critical paths within a synchronization window.

(Top) single- vs two-rank critical paths: with one concurrent P2P round
between sync points, at most two ranks are implicated, at any scale.
(Bottom) task-schedule impact: prioritizing sends reduces dispatch time
without delaying the sender, shortening two-rank paths.
"""

import numpy as np

from repro.critical_path import (
    compare_orderings,
    extract_critical_path,
    verify_two_rank_principle,
)
from tests.helpers import random_edges


def _verify_windows(n_windows: int = 50, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    implicated = []
    improved = 0
    for _ in range(n_windows):
        nb = int(rng.integers(8, 40))
        nr = int(rng.integers(4, 16))
        block_rank = rng.integers(0, nr, size=nb)
        costs = rng.exponential(1.0, size=nb)
        edges = random_edges(rng, nb)
        if len(edges) == 0:
            continue
        cmp = compare_orderings(block_rank, costs, edges, latency=0.02)
        assert cmp.tuned.sync_time <= cmp.untuned.sync_time + 1e-9
        path = extract_critical_path(cmp.tuned)
        implicated.append(len(path.implicated_ranks))
        assert verify_two_rank_principle(cmp.tuned)
        assert verify_two_rank_principle(cmp.untuned)
        if cmp.makespan_reduction > 1e-9:
            improved += 1
    return {
        "windows": len(implicated),
        "max_implicated": max(implicated),
        "two_rank_paths": sum(1 for i in implicated if i == 2),
        "improved_by_reordering": improved,
    }


def test_fig4_two_rank_principle_and_reordering(benchmark):
    stats = benchmark.pedantic(_verify_windows, rounds=1, iterations=1)
    print("\nFig 4 — critical paths in synchronization windows:")
    print(f"  windows executed: {stats['windows']}")
    print(f"  max ranks implicated in any critical path: "
          f"{stats['max_implicated']} (paper principle: <= 2)")
    print(f"  windows with genuine two-rank paths: {stats['two_rank_paths']}")
    print(f"  windows where send priority shortened the window: "
          f"{stats['improved_by_reordering']}")
    assert stats["max_implicated"] <= 2
    assert stats["two_rank_paths"] > 0
