"""Shared configuration for the figure/table reproduction benchmarks.

Each benchmark module regenerates one paper table or figure: it runs the
experiment harness, prints the same rows/series the paper reports, and
asserts the qualitative *shape* (who wins, direction of trends, rough
factors).  Absolute numbers differ — the substrate is a simulator, not
the authors' 600-node testbed.

Scales: by default, geometry-faithful reduced configurations (minutes,
not hours).  Set ``REPRO_SCALE=paper`` to run the full Table I
configurations (512–4096 ranks, 30k–53k timesteps).
"""

from __future__ import annotations

import os


from repro.amr import SedovWorkload, scaled_config, table_i_config

PAPER_SCALE = os.environ.get("REPRO_SCALE", "").lower() == "paper"

#: scales used by the Sedov benchmarks
SEDOV_SCALES = (512, 1024, 2048, 4096) if PAPER_SCALE else (512, 1024)
#: scales used by commbench
COMMBENCH_SCALES = (512, 1024, 2048, 4096) if PAPER_SCALE else (128, 512)
#: scales used by scalebench (paper: up to 128K)
SCALEBENCH_SCALES = (512, 2048, 16384, 131072) if PAPER_SCALE else (512, 2048, 8192)
#: timestep budget for reduced Sedov runs
SEDOV_STEPS = None if PAPER_SCALE else 1500


def sedov_config(n_ranks: int):
    if PAPER_SCALE:
        return table_i_config(n_ranks)
    return scaled_config(n_ranks, scale=8, steps=SEDOV_STEPS)


_TRAJECTORIES = {}


def shared_trajectory(n_ranks: int):
    """Policy-independent Sedov trajectory, cached per scale."""
    if n_ranks not in _TRAJECTORIES:
        _TRAJECTORIES[n_ranks] = SedovWorkload(sedov_config(n_ranks)).full_trajectory()
    return _TRAJECTORIES[n_ranks]
