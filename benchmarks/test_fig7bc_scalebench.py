"""Fig. 7b/7c — scalebench: makespan quality and placement overhead.

(b) normalized makespan under exponential / Gaussian / power-law block
    costs: LPT (CPL100) lowest; the bulk of the benefit is captured by
    X = 25 with far higher locality retention;
(c) placement computation time vs scale: tractable at AMR scales and
    mitigated by chunking at the largest ones (the paper's ~10 ms at
    16K ranks is C++; our Python shape is the same with a constant
    factor).
"""

import numpy as np
import pytest

from repro.bench import (
    ScalebenchConfig,
    makespan_table,
    overhead_table,
    run_scalebench,
)
from repro.core import PAPER_BUDGET_S, get_policy, measure_policy
from repro.bench import make_costs

from conftest import PAPER_SCALE, SCALEBENCH_SCALES


@pytest.fixture(scope="module")
def rows():
    cfg = ScalebenchConfig(
        scales=tuple(SCALEBENCH_SCALES),
        repeats=3 if not PAPER_SCALE else 5,
    )
    return run_scalebench(cfg)


def test_fig7b_normalized_makespan(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n" + makespan_table(rows))
    for n_ranks in sorted({r.n_ranks for r in rows}):
        for dist in ("exponential", "gaussian", "power-law"):
            by_x = {
                r.x: r.norm_makespan
                for r in rows
                if r.n_ranks == n_ranks and r.distribution == dist
            }
            # LPT achieves the lowest makespan (within numeric noise).
            assert by_x[100.0] <= min(by_x.values()) * 1.02
            # X=25 captures the bulk of the gain.
            gain = by_x[0.0] - by_x[100.0]
            if gain > 1e-6:
                assert by_x[0.0] - by_x[25.0] >= 0.5 * gain


def test_fig7c_placement_overhead(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n" + overhead_table(rows))
    scales = sorted({r.n_ranks for r in rows})
    mean_by_scale = [
        np.mean([r.placement_s for r in rows if r.n_ranks == s]) for s in scales
    ]
    print("  mean placement time by scale: "
          + "  ".join(f"{s}={t * 1e3:.2f}ms" for s, t in zip(scales, mean_by_scale)))
    # Overhead grows with scale but stays tractable at AMR scales.
    assert mean_by_scale[-1] > mean_by_scale[0]
    assert mean_by_scale[0] < PAPER_BUDGET_S


def test_fig7c_chunking_mitigates_large_scale(benchmark):
    """The paper's zonal/chunked mitigation: at large rank counts the
    chunk-parallel CDP is far cheaper than the global DP."""
    n_ranks = 16384 if PAPER_SCALE else 8192
    costs = make_costs("exponential", int(n_ranks * 2.25), seed=0)

    def run():
        chunked = measure_policy(
            get_policy("cdp-chunked", ranks_per_chunk=512), costs, n_ranks, repeats=2
        )
        global_dp = measure_policy(get_policy("cdp"), costs, n_ranks, repeats=2)
        return chunked, global_dp

    chunked, global_dp = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFig 7c (mitigation) @ {n_ranks} ranks:")
    print(f"  global CDP : {global_dp.mean_s * 1e3:9.2f} ms")
    print(f"  chunked CDP: {chunked.mean_s * 1e3:9.2f} ms")
    assert chunked.mean_s < global_dp.mean_s
