"""Writing a custom engine hook.

The epoch loop lives in one place — ``repro.engine.EpochEngine`` — and
everything else (telemetry, fault injection, mitigation, checkpointing,
profiling) is a hook composed onto it.  This example adds two hooks to a
plain run:

* ``PhaseProfilerHook`` (built-in) — host wall-clock vs simulated charge
  per phase;
* ``ImbalanceLogger`` (custom) — watches per-rank loads after each
  redistribution and enables the drain-queue tuning knob through the
  engine's control channel the first time imbalance crosses a threshold.

Run with::

    PYTHONPATH=src python examples/custom_hook.py
"""

import dataclasses

from repro.amr.driver import DriverConfig, run_trajectory
from repro.core import load_stats
from repro.core.policy import get_policy
from repro.engine import EpochHook, PhaseProfilerHook
from repro.resilience.experiment import small_workload
from repro.simnet.cluster import Cluster
from repro.simnet.tuning import UNTUNED


class ImbalanceLogger(EpochHook):
    """Log post-redistribution imbalance; enable the drain queue once."""

    def __init__(self, threshold: float = 1.05):
        self.threshold = threshold
        self.history = []

    def after_redistribute(self, ctx, epoch):
        stats = load_stats(ctx.policy_costs, ctx.outcome.result.assignment,
                           ctx.cluster.n_ranks)
        imbalance = float(stats.imbalance)
        self.history.append((epoch.index, imbalance))
        if imbalance > self.threshold and not ctx.tuning.drain_queue:
            # Hooks never mutate the world directly: post a request and
            # the engine applies it before the next hook fires.
            ctx.request_reconfigure(
                tuning=dataclasses.replace(ctx.tuning, drain_queue=True)
            )
            print(f"epoch {epoch.index}: imbalance {imbalance:.3f} > "
                  f"{self.threshold} -> drain queue enabled")


def main():
    epochs = small_workload(64, 120)
    cluster = Cluster(n_ranks=64)
    logger = ImbalanceLogger()
    profiler = PhaseProfilerHook()

    summary = run_trajectory(
        get_policy("baseline"), epochs, cluster,
        DriverConfig(seed=2, tuning=UNTUNED),
        hooks=[logger, profiler],
    )

    print(f"wall {summary.wall_s:.1f}s over {summary.total_steps} steps, "
          f"{summary.lb_invocations} redistributions")
    print("imbalance per epoch: "
          + "  ".join(f"{i}:{x:.3f}" for i, x in logger.history))
    print()
    print(profiler.report())


if __name__ == "__main__":
    main()
