#!/usr/bin/env python3
"""Compute-variability sensitivity (the paper's AthenaPK observation).

§VI: "results were directionally similar: codes with high compute
variability benefit more from better placement, and vice-versa."  The
galaxy-cooling-style workload exposes variability as a knob; this
example sweeps it and shows CPLX's benefit growing with variability —
and the redistribution trigger correctly declining to rebalance when
variability is too low to pay for migration.

Run:  python examples/cooling_variability.py
"""

import numpy as np

from repro.amr import (
    CoolingConfig,
    CoolingWorkload,
    ImbalanceTrigger,
    run_trajectory,
)
from repro.core import get_policy, load_stats, lpt_assign
from repro.simnet import Cluster


def main() -> None:
    n_ranks = 128
    cluster = Cluster(n_ranks=n_ranks)
    print("variability  baseline_wall  cplx50_wall  benefit   trigger")
    print("-" * 62)
    for variability in (0.05, 0.2, 0.4, 0.8, 1.2):
        cfg = CoolingConfig(
            n_ranks=n_ranks,
            root_shape=(8, 4, 4),
            variability=variability,
            t_total=600,
            epoch_steps=60,
            seed=11,
        )
        traj = CoolingWorkload(cfg).full_trajectory()
        base = run_trajectory(get_policy("baseline"), traj, cluster)
        cplx = run_trajectory(get_policy("cplx:50"), traj, cluster)
        benefit = (base.wall_s - cplx.wall_s) / base.wall_s

        # Would a cost/benefit trigger even bother rebalancing?
        costs = traj[0].base_costs
        assignment = get_policy("baseline").place(costs, n_ranks).assignment
        achievable = load_stats(costs, lpt_assign(costs, n_ranks), n_ranks).makespan
        decision = ImbalanceTrigger(horizon_steps=cfg.epoch_steps).evaluate(
            costs, assignment, n_ranks, achievable_makespan=achievable
        )
        ratio = decision.expected_benefit_s / max(decision.estimated_cost_s, 1e-12)
        verdict = f"rebalance ({ratio:.0f}x payoff)" if decision.rebalance else "skip"
        print(f"{variability:11.2f}  {base.wall_s:13.1f}  {cplx.wall_s:11.1f}  "
              f"{benefit:7.1%}   {verdict}")

    print("\nAs in the paper: the benefit of telemetry-driven placement "
          "scales with\nthe code's compute variability (cooling blobs keep "
          "a floor of imbalance,\nso the trigger's payoff ratio grows with "
          "the variability knob).")


if __name__ == "__main__":
    main()
