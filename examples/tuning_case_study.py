#!/usr/bin/env python3
"""The paper's tuning journey, end to end (Figs. 1–3, §III–§IV).

Walks the four case studies in the order the paper encountered them:

1. Fig. 2 — thermal throttling: clusters-of-16 compute inflation,
   detection, health-check pruning, and the ~3x runtime recovery;
2. Fig. 1 (top) — work↔time correlation before/after stack tuning;
3. Fig. 1 (bottom) — ACK-loss MPI_Wait spikes vs the drain queue;
4. Fig. 3 — rankwise comm variance across the three tuning stages.

Run:  python examples/tuning_case_study.py
"""

from repro.bench import (
    correlation_study,
    reordering_study,
    spike_study,
    throttling_study,
)


def main() -> None:
    print("=== Fig. 2: fail-slow hardware ===")
    t = throttling_study(n_ranks=256, n_steps=30)
    sick, ok = t["throttled"], t["pruned"]
    print(f"  throttled run : sync fraction {sick['sync_fraction']:.0%}, "
          f"detector found {sick['detected_nodes']:.0f}/"
          f"{sick['true_bad_nodes']:.0f} bad nodes")
    print(f"  pruned run    : sync fraction {ok['sync_fraction']:.0%}")
    print(f"  runtime ratio : {t['speedup']['runtime_ratio']:.1f}x "
          f"(paper: 10h -> 2.5h)")

    print("\n=== Fig. 1 (top): telemetry correlation ===")
    c = correlation_study(n_ranks=128, n_steps=50)
    print(f"  work<->comm-time correlation: untuned {c['untuned']:+.2f} "
          f"-> tuned {c['tuned']:+.2f}")

    print("\n=== Fig. 1 (bottom): MPI_Wait spikes ===")
    s = spike_study(n_ranks=128, n_steps=150)
    nd, d = s["no_drain_queue"], s["drain_queue"]
    print(f"  spikes: {nd['spikes']:.0f} -> {d['spikes']:.0f} with drain queue")
    print(f"  mean collective time: {nd['mean_sync_s'] * 1e3:.1f} ms -> "
          f"{d['mean_sync_s'] * 1e3:.1f} ms "
          f"({nd['mean_sync_s'] / d['mean_sync_s']:.1f}x inflation removed; "
          f"paper: ~3x)")

    print("\n=== Fig. 3: tuning stages ===")
    for name, var in reordering_study(n_ranks=128, n_steps=50):
        print(f"  {name:22s} across-rank spread {var['across_rank_spread'] * 1e3:7.2f} ms, "
              f"within-rank jitter {var['mean_within_rank_jitter'] * 1e3:6.2f} ms")


if __name__ == "__main__":
    main()
