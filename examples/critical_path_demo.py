#!/usr/bin/env python3
"""Critical-path analysis and task reordering (paper §IV-B/§IV-D, Fig. 4).

Demonstrates the paper's critical-path model on executed exchange
windows:

1. the *two-rank principle* — with one P2P round between syncs, the
   critical path implicates at most two ranks, at any scale;
2. the send-priority reordering fix — dispatching boundary data early
   shortens two-rank paths without hurting anything else;
3. a discrete-event cross-check: the same window executed on the
   simulated-MPI engine (happened-before semantics) agrees with the
   analytical schedule model.

Run:  python examples/critical_path_demo.py
"""

import numpy as np

from repro.amr import TaskKind, build_exchange_graph, rank_schedule
from repro.critical_path import (
    compare_orderings,
    execute_schedules,
    extract_critical_path,
    verify_two_rank_principle,
)
from repro.simnet import Cluster, Engine, FabricSpec, SimMPI


def fig4_example() -> None:
    """The Fig. 4 two-block schedule: prioritizing Send_0 helps its waiter."""
    # Rank 0 owns blocks 0 (cheap) and 1 (expensive); rank 1 waits on block 0.
    block_rank = np.array([0, 0, 1])
    costs = np.array([0.2, 1.0, 0.1])
    edges = np.array([[0, 2]])  # block 0 <-> block 2 (cross-rank)
    cmp = compare_orderings(block_rank, costs, edges, latency=0.05)
    print("Fig. 4 example:", cmp.summary())
    # Untuned: Send_0 dispatches after block 1's kernel (t=1.2);
    # tuned: right after block 0's kernel (t=0.2) -> rank 1 unblocked ~1s earlier.


def two_rank_principle_at_scale(n_ranks: int = 64, n_blocks: int = 128) -> None:
    rng = np.random.default_rng(7)
    block_rank = rng.integers(0, n_ranks, size=n_blocks)
    costs = rng.exponential(1.0, size=n_blocks)
    edges = rng.integers(0, n_blocks, size=(n_blocks * 3, 2))
    edges = np.unique(np.sort(edges[edges[:, 0] != edges[:, 1]], axis=1), axis=0)
    graph = build_exchange_graph(block_rank, costs, edges)
    ranks = sorted({t.rank for t in graph.tasks})
    schedules = {r: rank_schedule(graph, r, send_priority=True) for r in ranks}
    execution = execute_schedules(graph, schedules, latency=0.01)
    path = extract_critical_path(execution)
    print(f"\n{n_ranks}-rank window: critical path has {len(path.tasks)} tasks, "
          f"implicates ranks {path.implicated_ranks} "
          f"({path.crossings} cross-rank hops)")
    print(f"two-rank principle holds: {verify_two_rank_principle(execution)}")
    print(f"MPI_Wait on the path: {path.wait_on_path_s:.3f}s of "
          f"{path.length_s:.3f}s window")


def reordering_statistics(trials: int = 200) -> None:
    rng = np.random.default_rng(1)
    reductions = []
    for _ in range(trials):
        nb = int(rng.integers(6, 24))
        nr = int(rng.integers(2, 8))
        block_rank = rng.integers(0, nr, size=nb)
        costs = rng.exponential(1.0, size=nb)
        e = rng.integers(0, nb, size=(nb * 2, 2))
        e = np.unique(np.sort(e[e[:, 0] != e[:, 1]], axis=1), axis=0)
        if not len(e):
            continue
        cmp = compare_orderings(block_rank, costs, e, latency=0.02)
        reductions.append(cmp.makespan_reduction)
    arr = np.asarray(reductions)
    print(f"\nsend-priority reordering over {len(arr)} random windows:")
    print(f"  makespan reduction: mean {arr.mean():.1%}, max {arr.max():.1%}, "
          f"never negative: {bool((arr >= -1e-12).all())}")


def des_cross_check() -> None:
    """Run the Fig. 4 window on the discrete-event simulated MPI.

    The DES executes real isend/irecv/wait/allreduce semantics; with a
    near-zero-latency fabric its window makespan matches the analytical
    schedule model's prediction for the same tuned schedule.
    """
    block_rank = np.array([0, 0, 1])
    costs = np.array([0.2, 1.0, 0.1])
    edges = np.array([[0, 2]])
    graph = build_exchange_graph(block_rank, costs, edges)
    schedules = {r: rank_schedule(graph, r, send_priority=True) for r in (0, 1)}
    analytical = execute_schedules(graph, schedules, latency=0.0)

    engine = Engine()
    cluster = Cluster(n_ranks=2)
    fabric = FabricSpec(
        local_latency_s=1e-12, remote_latency_s=1e-12,
        local_bandwidth=1e18, remote_bandwidth=1e18,
        local_service_s=1e-12, remote_service_s=1e-12,
        collective_base_s=1e-12, collective_per_level_s=1e-12,
    )
    mpi = SimMPI(engine, cluster, fabric=fabric)

    def program(rank: int):
        reqs = []
        for task in schedules[rank]:
            if task.kind is TaskKind.COMPUTE:
                yield from mpi.compute(rank, task.duration)
            elif task.kind is TaskKind.SEND:
                mpi.isend(rank, task.peer_rank, task.tag)
            elif task.kind is TaskKind.RECV:
                reqs.append(mpi.irecv(rank, task.peer_rank, task.tag))
        yield from mpi.waitall(rank, reqs)
        yield from mpi.allreduce(rank)

    for r in (0, 1):
        engine.spawn(program(r), name=f"rank{r}")
    end = engine.run()
    print(f"\nDES cross-check: analytical window {analytical.sync_time:.3f}s, "
          f"discrete-event {end:.3f}s (agreement within fabric epsilon)")


def main() -> None:
    fig4_example()
    two_rank_principle_at_scale()
    reordering_statistics()
    des_cross_check()


if __name__ == "__main__":
    main()
