#!/usr/bin/env python3
"""The whole library in one run: Simulation = solve + measure + place.

A single :class:`repro.amr.Simulation` advances the 2D Euler blast,
adapts the mesh on the solver's own gradient tags, tracks measured
kernel costs, consults the cost/benefit trigger, redistributes with
CPLX, and collects rank-step telemetry — which the automated diagnosis
then reads back.

Run:  python examples/full_pipeline.py
"""

from repro.amr import (
    EulerSolver2D,
    ImbalanceTrigger,
    Simulation,
    blast_initial_state,
)
from repro.core import get_policy
from repro.mesh import AmrMesh, RootGrid
from repro.telemetry import Query, diagnose


def build(policy: str) -> Simulation:
    mesh = AmrMesh(RootGrid((4, 4)), block_cells=16, max_level=2,
                   domain_size=(1.0, 1.0))
    solver = EulerSolver2D(mesh, cfl=0.4, stiffness_work=60)
    solver.initialize(blast_initial_state((0.5, 0.5), 0.1))
    return Simulation(
        solver,
        get_policy(policy),
        n_ranks=16,
        adapt_interval=5,
        ranks_per_node=4,
        trigger=ImbalanceTrigger(
            step_seconds_per_cost=1.0, redistribution_cost_s=0.002,
            horizon_steps=5,
        ),
    )


def main() -> None:
    for policy in ("baseline", "cplx:50"):
        sim = build(policy)
        result = sim.run(40)
        table = result.collector.steps_table()
        late = table.filter(table["step"] >= 20)  # after costs are learned
        busy = late["compute_s"].sum()
        stall = late["sync_s"].sum()
        print(f"{policy:10s} {result.summary()}")
        print(f"{'':10s} steady-state: compute {busy:.3f}s vs "
              f"sync stall {stall:.3f}s "
              f"({stall / (busy + stall):.0%} of rank-time wasted)")

    # Telemetry is fully queryable; show the slowest ranks of the last run.
    print("\nslowest ranks (mean compute, SQL-queryable telemetry):")
    out = (
        Query(table)
        .group_by("rank")
        .agg(("compute_s", "mean"))
        .order_by("mean_compute_s", desc=True)
        .limit(3)
        .run()
    )
    print(out.pretty())

    print("\nautomated diagnosis of the CPL50 run:")
    print(diagnose(table, ranks_per_node=4).text())


if __name__ == "__main__":
    main()
