#!/usr/bin/env python3
"""End-to-end with real physics: blast wave → measured costs → placement.

The performance experiments drive refinement from an analytic Sedov
schedule; this example closes the loop with the actual 2D Euler solver:

1. run a cylindrical blast on the AMR mesh (HLL finite volume), with
   gradient-driven refinement tracking the shock;
2. *measure* per-block kernel times — real telemetry, the thing the
   paper's change #1 feeds into the framework's cost hooks;
3. hand the measured costs to the placement policies and compare the
   resulting balance — baseline block-count splitting vs CPLX on real
   measured variability.

Run:  python examples/blast_hydro.py
"""

import numpy as np

from repro.amr import EulerSolver2D, blast_initial_state
from repro.core import contiguity_fraction, get_policy, load_stats
from repro.mesh import AmrMesh, RootGrid


def main() -> None:
    mesh = AmrMesh(RootGrid((4, 4)), block_cells=16, max_level=2,
                   domain_size=(1.0, 1.0))
    solver = EulerSolver2D(mesh, cfl=0.4)
    solver.initialize(blast_initial_state((0.5, 0.5), 0.1, p_in=10.0))

    print("adaptive blast run (2D Euler, HLL):")
    for cycle in range(6):
        for _ in range(5):
            solver.step()
        n_ref, n_coarse = solver.adapt(threshold=0.15, coarsen_below=0.03)
        rho_min, p_min = solver.min_density_pressure()
        print(f"  t={solver.time:.4f}  blocks={mesh.n_blocks:4d} "
              f"(+{n_ref}/-{n_coarse})  rho_min={rho_min:.3f} p_min={p_min:.3f}")

    # One more step to get fresh kernel measurements on the final mesh.
    solver.step()
    costs = solver.measured_costs()
    cv = costs.std() / costs.mean()
    print(f"\nmeasured per-block kernel times: mean {costs.mean() * 1e3:.3f} ms, "
          f"CV {cv:.2f} (real compute variability!)")

    n_ranks = 16
    print(f"\nplacement of {mesh.n_blocks} blocks on {n_ranks} ranks "
          f"using MEASURED costs:")
    for name in ("baseline", "cplx:0", "cplx:50", "lpt"):
        result = get_policy(name).place(costs, n_ranks)
        stats = load_stats(costs, result.assignment, n_ranks)
        print(f"  {name:10s} makespan={stats.makespan * 1e3:7.3f} ms "
              f"imbalance={stats.imbalance:5.2f} "
              f"contiguity={contiguity_fraction(result.assignment):4.2f}")

    base = load_stats(
        costs, get_policy("baseline").place(costs, n_ranks).assignment, n_ranks
    )
    cplx = load_stats(
        costs, get_policy("cplx:50").place(costs, n_ranks).assignment, n_ranks
    )
    print(f"\nCPL50 straggler reduction on real measured costs: "
          f"{1 - cplx.makespan / base.makespan:.1%}")


if __name__ == "__main__":
    main()
