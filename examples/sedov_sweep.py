#!/usr/bin/env python3
"""Sedov Blast Wave policy sweep — the paper's headline experiment (Fig. 6).

Runs baseline + CPLX {0, 25, 50, 75, 100} over shared Sedov
trajectories at two scales and prints the paper's three figure views:
phase-decomposed runtime (6a), the comm↔sync tradeoff (6b), and message
locality (6c), plus the Table I statistics of the generated runs.

Run:  python examples/sedov_sweep.py            (reduced scale, ~1 min)
      REPRO_SCALE=paper python examples/sedov_sweep.py   (full Table I)
"""

from repro.bench import SedovSweepConfig, paper_scale_requested, run_sedov_sweep


def main() -> None:
    config = SedovSweepConfig(
        scales=(512, 1024),
        paper_scale=paper_scale_requested(),
    )
    result = run_sedov_sweep(config)

    print(result.table_i_text())
    print()
    print(result.fig6a_table())
    print()
    print(result.fig6b_table())
    print()
    print(result.fig6c_table())

    print("\nHeadline numbers:")
    for scale in result.scales():
        best = result.best_label(scale)
        print(
            f"  {scale} ranks: best policy {best}, "
            f"{result.reduction_vs_baseline(scale, best):.1%} runtime reduction "
            f"(paper: CPL50 best overall, up to 21.6% at 4096 ranks)"
        )


if __name__ == "__main__":
    main()
