"""Talk to the placement job service: submit, watch, query, cancel.

``repro serve`` exposes the same job layer the ``sedov`` / ``scalebench``
/ ``resilience`` subcommands run in-process — this script is the
service's worked example and plays one full multi-tenant session:

1. two tenants submit the same Sedov sweep with different priorities
   and run concurrently under the per-tenant quota;
2. the supervised executor's progress events stream back over the
   socket as each cell completes;
3. a plan-engine SQL query runs against one job's telemetry spool —
   the same query that works *while* the job is still running;
4. a third job is cancelled mid-run, leaving a resumable journal, and
   a ``resume_of`` submit completes it to the same digest an
   uninterrupted run produces;
5. the server is restarted out from under a connected client (private
   service only): a durable ``--state`` incarnation comes back on the
   same port, the client's retry loop reconnects transparently, and a
   resubmit with the same idempotency key dedups to the recovered job
   instead of minting a twin.

By default the script starts a private in-process service on a loopback
port, so it is runnable with no setup::

    PYTHONPATH=src python examples/service_client.py

Point it at a real server instead (``repro serve --port 7461``) with::

    PYTHONPATH=src python examples/service_client.py --port 7461
"""

import argparse
import asyncio
import contextlib
import tempfile
import threading
import time

from repro.service.client import ServiceClient

#: small enough to finish in seconds, wide enough to cancel mid-run
SWEEP = {
    "scales": [512],
    "steps": 60,
    "policies": ["baseline", "cplx:0", "cplx:50"],
}


@contextlib.contextmanager
def private_service(state_dir=None, port=0):
    """A throwaway in-process service on an OS-assigned loopback port.

    Pass ``state_dir``/``port`` to bring up a *durable* incarnation that
    a later call can restart in place (act 5)."""
    from repro.service.server import JobService, ServiceConfig

    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        service = JobService(ServiceConfig(
            port=port, journal_root=root, state_dir=state_dir,
        ))
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def body():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service.start())
            started.set()
            loop.run_until_complete(service.serve_forever())
            loop.run_until_complete(service.close())
            loop.close()

        thread = threading.Thread(target=body, daemon=True)
        thread.start()
        if not started.wait(10):
            raise RuntimeError("in-process service did not start")
        try:
            yield service.address
        finally:
            with ServiceClient(*service.address) as c:
                c.shutdown()
            thread.join(timeout=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="connect to a running `repro serve` (default: start a "
        "private in-process service)",
    )
    # parse_known_args: the example-smoke suite runs this file under
    # pytest's own argv, which must not be mistaken for ours.
    args, _ = parser.parse_known_args(argv)

    stack = contextlib.ExitStack()
    with stack:
        if args.port is None:
            host, port = stack.enter_context(private_service())
        else:
            host, port = args.host, args.port
        client = stack.enter_context(ServiceClient(host, port))

        hello = client.ping()
        print(f"connected to {host}:{port} "
              f"({hello['active']} active, {hello['queued']} queued)")

        # -- 1. two tenants, different priorities ---------------------- #
        alice = client.submit("sedov", SWEEP, tenant="alice", priority=0)
        bob = client.submit("sedov", SWEEP, tenant="bob", priority=5)
        print(f"submitted {alice} (alice, prio 0) and {bob} (bob, prio 5)")

        # -- 2. stream bob's executor events --------------------------- #
        for event in client.stream_events(bob, poll_s=0.1):
            print(f"  [{bob}] cell {event['cell']} {event['kind']}")

        # -- 3. SQL over the job's telemetry spool --------------------- #
        reply = client.query(
            bob, "SELECT kind, count(cell) FROM events GROUP BY kind"
        )
        by_kind = dict(
            zip(reply["columns"]["kind"], reply["columns"]["count_cell"])
        )
        print(f"event summary for {bob}: {by_kind}")

        ra = client.result(alice, timeout_s=600)
        rb = client.result(bob, timeout_s=600)
        print(f"{alice} digest: {ra['result']['digest']}")
        print(f"{bob} digest:   {rb['result']['digest']}")

        # -- 4. cancel mid-run, then resume bit-identically ------------ #
        doomed = client.submit("sedov", SWEEP, tenant="alice")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if client.status(doomed)["cells_done"] >= 1:
                break
            time.sleep(0.05)
        client.cancel(doomed)
        cancelled = client.result(doomed, timeout_s=600)
        status = client.status(doomed)
        print(f"{doomed} cancelled after {status['cells_done']}/"
              f"{status['cells_total']} cells "
              f"(exit {cancelled['result']['exit_code']})")

        resumed = client.submit(
            "sedov", SWEEP, tenant="alice", resume_of=doomed
        )
        rr = client.result(resumed, timeout_s=600)
        hits = rr["result"]["counters"]["n_resume_hits"]
        print(f"{resumed} resumed {doomed}: {hits} journal hit(s), "
              f"digest {rr['result']['digest']}")

        match = rr["result"]["digest"] == ra["result"]["digest"]
        print(f"resume digest matches uninterrupted run: {match}")

    # -- 5. survive a server restart (private service only) ------------ #
    # A durable incarnation (``repro serve --state DIR``) writes every
    # job transition through a crash-safe store, so a restarted server
    # recovers its job table; the client's retry loop hides the
    # reconnect from idempotent calls.
    survived = True
    if args.port is None:
        with tempfile.TemporaryDirectory(prefix="repro-state-") as state:
            with private_service(state_dir=state) as (host, port):
                durable = ServiceClient(host, port, retries=8,
                                        backoff_base_s=0.05,
                                        backoff_max_s=0.5)
                job = durable.submit("sedov", SWEEP, tenant="alice",
                                     idempotency_key="example-restart")
                first = durable.result(job, timeout_s=600)
                print(f"[durable] {job} done, digest "
                      f"{first['result']['digest'][:16]}…; "
                      f"restarting the server ...")
            # Server #1 is gone.  Server #2: same port, same state dir.
            with private_service(state_dir=state, port=port):
                state_seen = durable.status(job)["state"]
                again = durable.submit("sedov", SWEEP, tenant="alice",
                                       idempotency_key="example-restart")
                deduped = again == job
                print(f"[durable] after restart: {job} is {state_seen}; "
                      f"resubmit deduped: {deduped}")
                survived = state_seen == "done" and deduped
            durable.close()
    else:
        print("(skipping restart act against an external server)")

    ok = match and survived
    return 0 if ok else 1


if __name__ == "__main__":
    code = main()
    if code:
        raise SystemExit(code)
