#!/usr/bin/env python3
"""Quickstart: mesh → placement → simulated run in ~60 lines.

Builds a small adaptively refined 3D mesh (the Fig. 5 structure: octree
+ Z-order SFC block IDs), places its blocks with the baseline and CPLX
policies, and simulates a few hundred AMR timesteps on a virtual
cluster, printing the phase breakdown and the CPLX improvement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.amr import DriverConfig, SedovWorkload, run_trajectory, scaled_config
from repro.core import contiguity_fraction, get_policy, load_stats
from repro.simnet import Cluster


def main() -> None:
    # --- a Sedov workload at reduced geometry (512 ranks, short run) ----
    config = scaled_config(n_ranks=512, scale=8, steps=500)
    workload = SedovWorkload(config)
    trajectory = workload.full_trajectory()
    print(f"Sedov trajectory: {len(trajectory)} epochs, "
          f"{len(trajectory[0].blocks)} -> {len(trajectory[-1].blocks)} blocks")

    # --- placement policies share one interface -------------------------
    epoch = trajectory[len(trajectory) // 2]
    costs = epoch.base_costs
    for name in ("baseline", "cplx:0", "cplx:50", "lpt"):
        result = get_policy(name).place(costs, 512)
        stats = load_stats(costs, result.assignment, 512)
        print(
            f"  {name:10s} makespan={stats.makespan:7.2f} "
            f"imbalance={stats.imbalance:5.2f} "
            f"SFC-contiguity={contiguity_fraction(result.assignment):5.2f} "
            f"placement={result.elapsed_s * 1e3:6.2f} ms"
        )

    # --- end-to-end simulated runs ---------------------------------------
    cluster = Cluster(n_ranks=512)
    driver = DriverConfig()
    baseline = run_trajectory(get_policy("baseline"), trajectory, cluster, driver)
    cplx = run_trajectory(get_policy("cplx:50"), trajectory, cluster, driver)
    print("\nSimulated end-to-end runs:")
    print(" ", baseline.row())
    print(" ", cplx.row())
    gain = (baseline.wall_s - cplx.wall_s) / baseline.wall_s
    print(f"\nCPL50 runtime reduction vs baseline: {gain:.1%} "
          f"(paper: up to 21.6% at full scale)")


if __name__ == "__main__":
    main()
