#!/usr/bin/env python3
"""commbench + scalebench — the paper's §VI-C microbenchmarks (Fig. 7).

* commbench: boundary-exchange round latency vs placement locality at
  two scales (Fig. 7a's locality sweep);
* scalebench: normalized makespan under three cost distributions
  (Fig. 7b) and placement computation overhead vs scale (Fig. 7c),
  checked against the paper's 50 ms budget.

Run:  python examples/microbenchmarks.py
"""

from repro.bench import (
    CommbenchConfig,
    ScalebenchConfig,
    makespan_table,
    overhead_table,
    run_commbench,
    run_scalebench,
)
from repro.core import PAPER_BUDGET_S


def main() -> None:
    print("=== commbench: round latency vs locality (Fig. 7a) ===")
    for n_ranks in (128, 512):
        result = run_commbench(
            CommbenchConfig(n_ranks=n_ranks, n_meshes=4, n_rounds=30)
        )
        print(" ", result.series())
        print(f"    best X = {result.best_x():g}  "
              f"(discarded {result.discarded_rounds} outlier rounds)")

    print("\n=== scalebench: makespan + overhead (Fig. 7b/7c) ===")
    rows = run_scalebench(ScalebenchConfig(scales=(512, 2048, 8192), repeats=3))
    print(makespan_table(rows))
    print()
    print(overhead_table(rows))

    over_budget = [
        r for r in rows if r.placement_s > PAPER_BUDGET_S and r.n_ranks <= 8192
    ]
    print(f"\nplacements over the paper's 50 ms budget (<=8K ranks): "
          f"{len(over_budget)} of {len(rows)}")
    print("(the paper mitigates large-scale overhead with chunked/zonal "
          "placement; see ChunkedCDPPolicy)")


if __name__ == "__main__":
    main()
