"""Supervised sweep execution: quarantine, journaling, and resume.

A sweep is only as reliable as its flakiest cell: one OOM-killed worker
or one hung configuration used to abort the whole grid with nothing
salvaged.  This example runs a small placement sweep on the supervised
executor (``repro.perf.supervisor``) with *injected* faults:

* cell 2 is **poison** — it hard-crashes its worker on every attempt
  and ends up quarantined (the sweep still completes around it);
* cell 5 is **flaky** — it crashes once and is recovered by a retry.

Every completed cell is journaled to disk the moment it finishes, so
the second ``supervised_map`` call (``resume=True``) replays the
completed cells instead of re-running them — exactly what
``repro sedov --journal DIR --resume`` does after a Ctrl-C or
``kill -9``.  The executor's event log is ordinary telemetry,
queryable through the plan engine.

Run with::

    PYTHONPATH=src python examples/supervised_sweep.py
"""

import os
import tempfile

from repro.bench.distributions import make_costs
from repro.core.metrics import normalized_makespan
from repro.core.policy import get_policy
from repro.perf.supervisor import (
    CHAOS_ENV,
    CellFailure,
    SupervisorConfig,
    supervised_map,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.query import sql_query


def place_cell(x: float) -> float:
    """One sweep cell: place an exponential workload with CPLX(x).

    Deterministic given the item (the seed is derived from ``x``), as
    the supervisor's bit-identical-retry contract requires.
    """
    costs = make_costs("exponential", 512, seed=int(x))
    result = get_policy(f"cplx:{x}").place(costs, 128)
    return round(normalized_makespan(costs, result.assignment, 128), 6)


def main() -> None:
    items = [float(x) for x in (0, 10, 25, 40, 50, 60, 75, 100)]
    saved_chaos = os.environ.get(CHAOS_ENV)
    with tempfile.TemporaryDirectory(prefix="repro-supervised-") as journal:
        try:
            # Poison cell 2 (crashes every attempt) + flaky cell 5
            # (crashes on attempt 1 only).  The hook runs inside the
            # worker, so these are real worker deaths.
            os.environ[CHAOS_ENV] = "crash:2;crash:5@1"
            report = supervised_map(
                place_cell, items, jobs=2,
                config=SupervisorConfig(
                    retries=1, backoff_base_s=0.01, journal_dir=journal
                ),
            )
        finally:
            if saved_chaos is None:
                os.environ.pop(CHAOS_ENV, None)
            else:
                os.environ[CHAOS_ENV] = saved_chaos

        print(report.summary_line())
        for i, r in enumerate(report.results):
            if isinstance(r, CellFailure):
                print(f"  X={items[i]:>5}  QUARANTINED  [{r.kind}] {r.error}")
            else:
                print(f"  X={items[i]:>5}  norm makespan {r:.4f}")

        # The fault is gone now; --resume replays the 7 journaled cells
        # and executes only the quarantined one.
        resumed = supervised_map(
            place_cell, items, jobs=2,
            config=SupervisorConfig(journal_dir=journal, resume=True),
        )
        print()
        print(resumed.summary_line())
        assert resumed.counters["n_resume_hits"] == 7
        assert resumed.counters["n_executed"] == 1
        assert not resumed.failures

        # Executor events are telemetry: count them by kind through the
        # plan engine (codes per repro.perf.supervisor.EVENT_CODES).
        ds = TelemetryDataset.open(report.journal_path / "telemetry")
        table = sql_query(
            ds, "SELECT kind, count(cell) FROM events GROUP BY kind"
        ).run()
        print()
        print("executor events by kind (0=complete 1=crash 4=retry "
              "5=quarantine 6=resume_hit):")
        for kind, n in zip(table["kind"], table["count_cell"]):
            print(f"  kind={int(kind)}  n={int(n)}")


if __name__ == "__main__":
    main()
