#!/usr/bin/env python3
"""Telemetry-driven diagnosis walkthrough (paper §IV / Lesson 4).

Reproduces the paper's diagnosis workflow end to end on simulated
telemetry:

1. run an instrumented AMR simulation with *injected* anomalies
   (thermally throttled nodes + ACK-loss MPI_Wait spikes);
2. persist rank-step telemetry in the binary columnar format;
3. query it with SQL ("grouped by timestep, sorted by rank");
4. localize the anomalies with the straggler/throttle/spike detectors;
5. apply the mitigations (pruning, drain queue) and show the telemetry
   becoming clean and work-correlated.

Run:  python examples/telemetry_analysis.py
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.tuning_study import StudyEnvironment, _collect
from repro.simnet import TUNED, Cluster, FaultModel
from repro.telemetry import (
    detect_throttled_nodes,
    detect_wait_spikes,
    read_stats,
    read_table,
    sql,
    straggler_attribution,
    work_time_correlation,
    write_table,
)


def main() -> None:
    n_ranks, n_steps = 128, 60
    faults = FaultModel(
        throttled_node_fraction=0.10, ack_loss_prob=2e-4, ack_recovery_s=0.2, seed=3
    )
    sick_cluster = faults.apply_to_cluster(Cluster(n_ranks=n_ranks))
    env = StudyEnvironment.build(n_ranks=n_ranks, seed=3, cluster=sick_cluster)

    # -- 1. instrumented run with anomalies ------------------------------
    tuning = dataclasses.replace(TUNED, drain_queue=False)
    collector = _collect(env, tuning, faults, n_steps, seed=4, cluster=sick_cluster)
    table = collector.steps_table()
    print(f"collected {table.n_rows} rank-step records, columns: {table.names}")

    # -- 2. binary columnar persistence ----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.rprc"
        nbytes = write_table(table, path)
        print(f"persisted to {path.name}: {nbytes / 1e6:.2f} MB")
        print(f"embedded stats (no scan): comm_s range = "
              f"{read_stats(path)['comm_s']}")
        table = read_table(path)

    # -- 3. SQL over telemetry -------------------------------------------
    print("\nslowest ranks by mean compute (SQL):")
    print(sql(table,
              "SELECT rank, mean(compute_s) FROM t GROUP BY rank "
              "ORDER BY mean_compute_s DESC LIMIT 5").pretty())

    # -- 4. localize the anomalies ----------------------------------------
    stragglers = straggler_attribution(table, top_k=5)
    print("\nstraggler attribution (who did everyone wait for?):")
    print(stragglers.pretty())

    throttle = detect_throttled_nodes(table, ranks_per_node=16)
    print(f"\nthrottle detector: nodes {throttle.throttled_nodes} "
          f"(injected: {sick_cluster.unhealthy_nodes()})")

    spikes = detect_wait_spikes(table, "comm_s", k_mad=12.0, min_spike_s=5e-3)
    print(f"spike detector: {spikes.n_spikes} MPI_Wait spikes "
          f"above {spikes.threshold_s * 1e3:.1f} ms")

    corr_sick = work_time_correlation(
        table.with_column("msgs_total", table["msgs_local"] + table["msgs_remote"]),
        "msgs_total", "comm_s",
    )

    # -- 5. mitigate and re-measure ----------------------------------------
    healthy = sick_cluster.pruned()
    env2 = StudyEnvironment.build(n_ranks=healthy.n_ranks, seed=3, cluster=healthy)
    clean = _collect(env2, TUNED, FaultModel(), n_steps, seed=5, cluster=healthy)
    t2 = clean.steps_table()
    corr_clean = work_time_correlation(
        t2.with_column("msgs_total", t2["msgs_local"] + t2["msgs_remote"]),
        "msgs_total", "comm_s",
    )
    spikes2 = detect_wait_spikes(t2, "comm_s", k_mad=12.0, min_spike_s=5e-3)
    print("\nafter pruning + drain queue + tuned stack:")
    print(f"  spikes: {spikes.n_spikes} -> {spikes2.n_spikes}")
    print(f"  work<->time correlation: {corr_sick:.2f} -> {corr_clean:.2f} "
          f"(the Fig. 1a 'trustworthy telemetry' criterion)")

    # -- 6. the automated version of steps 3-5 -----------------------------
    from repro.telemetry import diagnose

    print("\nautomated diagnosis of the sick run:")
    print(diagnose(table, ranks_per_node=16).text())


if __name__ == "__main__":
    main()
