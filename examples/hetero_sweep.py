"""Placement on a mixed-hardware cluster in ~60 lines.

Builds a cluster from a node-class spec (one fast partition, one slow
partition on a thin NIC), threads the resulting
:class:`~repro.core.PlacementContext` through the capacity-aware
policies, and asks the paper's central question under heterogeneity:
does the locality/balance U-curve in X survive when ranks differ?

Run: ``python examples/hetero_sweep.py``
"""

import numpy as np

from repro.core import get_policy, load_stats, normalized_makespan
from repro.simnet import hetero_cluster

# A 2:1 fast/slow machine: fast nodes finish a block in half the time,
# slow nodes sit behind a 10 Gb/s NIC (reference tier is 40 Gb/s).
SPEC = "fast:0.5x16,slow:1.0x48@10"
N_RANKS = 256

cluster = hetero_cluster(N_RANKS, SPEC)
ctx = cluster.placement_context()
print(f"cluster: {N_RANKS} ranks over {cluster.n_nodes} nodes ({SPEC})")
print(f"total capacity: {ctx.total_capacity():.0f} reference-rank equivalents")
print()

rng = np.random.default_rng(42)
costs = rng.exponential(1.0, size=8 * N_RANKS)

print(f"{'policy':>16}  {'norm-mk (ctx)':>13}  {'imbalance':>9}")
for name in ("baseline", "lpt", "hetero-lpt", "cplx:50", "hetero-cplx:50"):
    policy = get_policy(name)
    assignment = policy.place(costs, N_RANKS, ctx=ctx).assignment
    mk = normalized_makespan(costs, assignment, N_RANKS, ctx=ctx)
    imb = load_stats(costs, assignment, N_RANKS, ctx=ctx).imbalance
    print(f"{name:>16}  {mk:>13.4f}  {imb:>9.4f}")

print()
print("U-curve in X, capacity-weighted (hetero-cplx:X):")
for x in (0, 25, 50, 75, 100):
    policy = get_policy(f"hetero-cplx:{x}")
    assignment = policy.place(costs, N_RANKS, ctx=ctx).assignment
    mk = normalized_makespan(costs, assignment, N_RANKS, ctx=ctx)
    bar = "#" * int(40 * (mk - 1.0))
    print(f"  X={x:>3}  norm-mk {mk:.4f}  {bar}")

print()
print("The hetero arms load fast ranks ~2x heavier; the plain arms")
print("treat all ranks alike and pay for it on the slow partition.")
